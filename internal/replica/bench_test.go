package replica

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/wal"
)

// BenchmarkFollowerLookupStaleness measures follower-side Lookup latency
// while the leader churns and the stream replicates underneath — the
// read-replica serving path. ns/op should sit at the leader's ~50ns
// Lookup cost (same lock-free route-table read); the staleness-ms metric
// reports the worst replication lag observed during the run.
func BenchmarkFollowerLookupStaleness(b *testing.B) {
	const n = 4000
	opts := core.DefaultOptions(4)
	opts.Seed = 7
	opts.NumWorkers = 2
	opts.MaxIterations = 30
	cfg := serve.Config{
		Options: opts,
		Shards:  2,
		Durability: serve.DurabilityConfig{
			Fsync:             wal.SyncNever,
			CheckpointEvery:   -1,
			NoFinalCheckpoint: true,
		},
	}
	ldir := b.TempDir()
	leader, err := serve.BootstrapDurable(ldir, gen.WattsStrogatz(n, 8, 0.2, 7), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer leader.Close()
	hs, _ := leaderHTTP(b, leader, ldir)

	fcfg := cfg
	fcfg.Shards = 0
	fl, err := StartFollower(FollowerConfig{
		Leader: hs.URL, Dir: b.TempDir(), Store: fcfg, Reconnect: 10 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer fl.Close()

	// Leader churn for the duration of the run; sample the follower's
	// observed staleness as it tails.
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	var maxStale atomic.Int64
	go func() {
		defer close(churnDone)
		src := rng.New(99)
		for {
			select {
			case <-stop:
				return
			default:
			}
			mut := &graph.Mutation{}
			for i := 0; i < 50; i++ {
				u := graph.VertexID(src.Intn(n))
				v := graph.VertexID(src.Intn(n))
				if u != v {
					mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{U: u, V: v, Weight: 1})
				}
			}
			if err := leader.Submit(mut); err != nil {
				return
			}
			if s := int64(fl.Staleness()); s > maxStale.Load() {
				maxStale.Store(s)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	st := fl.Store()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		src := rng.New(4242)
		for pb.Next() {
			if _, ok := st.Lookup(graph.VertexID(src.Intn(n))); !ok {
				b.Fatal("lookup miss on follower")
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-churnDone
	if err := fl.Err(); err != nil {
		b.Fatalf("follower died during bench: %v", err)
	}
	b.ReportMetric(float64(maxStale.Load())/1e6, "max-staleness-ms")
}
