// Package replica is the replicated serving plane: a leader streams its
// group-framed WAL journal over HTTP to followers that bootstrap from the
// leader's latest checkpoint and then replay the tail forever — recovery
// that never stops. A follower is a durable serve.Store over its own data
// directory, flipped read-only; it serves ~50ns lookups from its own
// atomically-swapped snapshots with a bounded staleness watermark, and
// promotion (with epoch fencing against the deposed leader) flips it to a
// full read-write coordinator.
//
// The wire protocol carries the journal's on-disk frames verbatim inside
// stream frames of its own:
//
//	u8 kind | u32 payload len | u32 CRC-32C(payload) | payload
//	payload = u64 epoch | u64 leaderSeq | [records: raw WAL frames]
//
// kinds: handshake (1, opens every stream), records (2, one or more
// journal frames in sequence order), heartbeat (3, keeps the staleness
// watermark honest across idle periods). Every frame carries the leader's
// epoch, so fencing is per-frame, not just per-connection: after a
// follower promotes, any frame still in flight from the deposed leader
// fails the epoch check and is dropped with the connection.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Stream frame kinds.
const (
	// FrameHandshake opens a stream: epoch + the leader's current journal
	// sequence, sent before any records.
	FrameHandshake byte = 1
	// FrameRecords carries raw journal frames (wal.ReadFramesAfter
	// format) in sequence order.
	FrameRecords byte = 2
	// FrameHeartbeat refreshes leaderSeq during idle periods.
	FrameHeartbeat byte = 3
)

const (
	frameHeader  = 9  // u8 kind + u32 len + u32 crc
	frameFixed   = 16 // u64 epoch + u64 leaderSeq
	maxFrameSize = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrShortFrame reports that a buffer holds only a prefix of a frame:
// read more bytes and retry. Every other decode error is corruption (or a
// version skew) and must drop the connection.
var ErrShortFrame = errors.New("replica: short frame")

// Frame is one decoded replication stream frame.
type Frame struct {
	Kind      byte
	Epoch     uint64
	LeaderSeq uint64 // leader's last journaled sequence at send time
	Records   []byte // FrameRecords only: concatenated raw journal frames
}

// AppendFrame encodes f onto dst and returns the extended slice.
func AppendFrame(dst []byte, f Frame) []byte {
	start := len(dst)
	dst = append(dst, f.Kind, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = binary.LittleEndian.AppendUint64(dst, f.Epoch)
	dst = binary.LittleEndian.AppendUint64(dst, f.LeaderSeq)
	dst = append(dst, f.Records...)
	payload := dst[start+frameHeader:]
	binary.LittleEndian.PutUint32(dst[start+1:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+5:], crc32.Checksum(payload, crcTable))
	return dst
}

// DecodeFrame parses one frame from the front of b, returning it and the
// number of bytes consumed. ErrShortFrame means b ends mid-frame (a torn
// read — wait for more bytes); any other error means the bytes can never
// parse and the stream must be abandoned. Records aliases b.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < frameHeader {
		return Frame{}, 0, ErrShortFrame
	}
	kind := b[0]
	if kind < FrameHandshake || kind > FrameHeartbeat {
		return Frame{}, 0, fmt.Errorf("replica: unknown frame kind %d", kind)
	}
	n := int(binary.LittleEndian.Uint32(b[1:]))
	if n < frameFixed || n > maxFrameSize {
		return Frame{}, 0, fmt.Errorf("replica: frame payload of %d bytes", n)
	}
	if kind != FrameRecords && n != frameFixed {
		return Frame{}, 0, fmt.Errorf("replica: %d-byte payload on control frame kind %d", n, kind)
	}
	if len(b) < frameHeader+n {
		return Frame{}, 0, ErrShortFrame
	}
	payload := b[frameHeader : frameHeader+n]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[5:]) {
		return Frame{}, 0, errors.New("replica: frame fails CRC")
	}
	f := Frame{
		Kind:      kind,
		Epoch:     binary.LittleEndian.Uint64(payload),
		LeaderSeq: binary.LittleEndian.Uint64(payload[8:]),
	}
	if kind == FrameRecords {
		f.Records = payload[frameFixed:]
		if len(f.Records) == 0 {
			return Frame{}, 0, errors.New("replica: empty records frame")
		}
	}
	return f, frameHeader + n, nil
}
