package replica

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/wal"
)

// twoClusters mirrors the serve test graph: two dense pseudo-random
// clusters joined by a single bridge, with the obvious 2-way labeling.
func twoClusters(half int) (*graph.Weighted, []int32) {
	w := graph.NewWeighted(2 * half)
	addClique := func(off int) {
		for i := 0; i < half; i++ {
			for j := 1; j <= 6; j++ {
				u := (i + j*j*7 + 13*j) % half
				if u != i && i < u {
					dup := false
					for _, a := range w.Neighbors(graph.VertexID(off + i)) {
						if a.To == graph.VertexID(off+u) {
							dup = true
							break
						}
					}
					if !dup {
						w.AddEdge(graph.VertexID(off+i), graph.VertexID(off+u), 2)
					}
				}
			}
		}
	}
	addClique(0)
	addClique(half)
	w.AddEdge(0, graph.VertexID(half), 2)
	labels := make([]int32, 2*half)
	for v := half; v < 2*half; v++ {
		labels[v] = 1
	}
	return w, labels
}

func storeOpts(k int, seed uint64) core.Options {
	o := core.DefaultOptions(k)
	o.Seed = seed
	o.NumWorkers = 2
	o.MaxIterations = 60
	return o
}

// leaderCfg is the shared store configuration: small segments so the
// retention race is reachable, and identical partitioner options on both
// sides so quiesced histories replay bit-identically.
func leaderCfg(shards, checkpointEvery int) serve.Config {
	return serve.Config{
		Options:       storeOpts(2, 9),
		Shards:        shards,
		DegradeFactor: 1.05,
		Durability: serve.DurabilityConfig{
			CheckpointEvery:   checkpointEvery,
			NoFinalCheckpoint: true,
			SegmentBytes:      1 << 10,
		},
	}
}

func newLeader(t *testing.T, dir string, shards, checkpointEvery int) *serve.Store {
	t.Helper()
	w, labels := twoClusters(50)
	st, err := serve.NewDurable(dir, w, labels, leaderCfg(shards, checkpointEvery))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// fastServer is a leader Server tuned for test latency.
func fastServer(st *serve.Store, dir string, epoch func() uint64) *Server {
	srv := NewServer(st, dir, epoch)
	srv.Poll = 2 * time.Millisecond
	srv.Heartbeat = 20 * time.Millisecond
	return srv
}

func leaderHTTP(t testing.TB, st *serve.Store, dir string) (*httptest.Server, *Server) {
	t.Helper()
	srv := fastServer(st, dir, func() uint64 { return 1 })
	mux := http.NewServeMux()
	srv.Register(mux)
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	return hs, srv
}

// followerCfg matches leaderCfg minus the shard count: Shards 0 inherits
// the leader's checkpointed layout.
func followerCfg(checkpointEvery int) serve.Config {
	cfg := leaderCfg(0, checkpointEvery)
	cfg.Shards = 0
	return cfg
}

func startFollower(t *testing.T, leaderURL, dir string, cfg serve.Config) *Follower {
	t.Helper()
	fl, err := StartFollower(FollowerConfig{
		Leader: leaderURL, Dir: dir, Store: cfg, Reconnect: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fl.Close() })
	return fl
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitApplied blocks until the follower has applied through seq and its
// store has settled (quiesced), so snapshots are comparable.
func waitApplied(t *testing.T, fl *Follower, seq uint64) {
	t.Helper()
	waitFor(t, 60*time.Second, fmt.Sprintf("follower to apply seq %d (at %d)", seq, fl.AppliedSeq()), func() bool {
		if err := fl.Err(); err != nil {
			t.Fatalf("follower died: %v", err)
		}
		return fl.AppliedSeq() >= seq
	})
	if err := fl.Store().Quiesce(); err != nil {
		t.Fatal(err)
	}
}

// requireSameState is the replication bit-identity comparator: labels, k,
// shard ranges, and the integer cut counters, all over the exported
// surface.
func requireSameState(t *testing.T, name string, got, want *serve.Store) {
	t.Helper()
	gs, ws := got.Snapshot(), want.Snapshot()
	if gs.K != ws.K || len(gs.Labels) != len(ws.Labels) {
		t.Fatalf("%s: k=%d with %d labels, want k=%d with %d labels", name, gs.K, len(gs.Labels), ws.K, len(ws.Labels))
	}
	for v := range ws.Labels {
		if gs.Labels[v] != ws.Labels[v] {
			t.Fatalf("%s: label of vertex %d = %d, want %d", name, v, gs.Labels[v], ws.Labels[v])
		}
	}
	if gs.CutWeight != ws.CutWeight || gs.TotalWeight != ws.TotalWeight {
		t.Fatalf("%s: counters (cut=%d,total=%d), want (cut=%d,total=%d)",
			name, gs.CutWeight, gs.TotalWeight, ws.CutWeight, ws.TotalWeight)
	}
	for l := range ws.CutByPartition {
		if gs.CutByPartition[l] != ws.CutByPartition[l] {
			t.Fatalf("%s: CutByPartition[%d] = %d, want %d", name, l, gs.CutByPartition[l], ws.CutByPartition[l])
		}
	}
	gb, wb := got.Bounds(), want.Bounds()
	if len(gb) != len(wb) {
		t.Fatalf("%s: %d shard bounds, want %d", name, len(gb), len(wb))
	}
	for i := range wb {
		if gb[i] != wb[i] {
			t.Fatalf("%s: shard bounds %v, want %v", name, gb, wb)
		}
	}
	if gs.AppliedBatches != ws.AppliedBatches {
		t.Fatalf("%s: applied %d, want %d", name, gs.AppliedBatches, ws.AppliedBatches)
	}
}

// randomHistory drives a randomized quiesced mutate/resize history against
// the leader: growth, random edges, and interleaved elastic resizes — the
// scripted TestShardCountDoesNotChangeLabels shape with rng-driven edges.
func randomHistory(t *testing.T, st *serve.Store, seed uint64, steps int) {
	t.Helper()
	src := rng.New(seed)
	n := len(st.Snapshot().Labels)
	for step := 0; step < steps; step++ {
		mut := &graph.Mutation{}
		if step == 2 {
			mut.NewVertices = 5
			for i := 0; i < 5; i++ {
				mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{
					U: graph.VertexID(n + i), V: graph.VertexID(src.Intn(n)), Weight: 2})
			}
			n += 5
		}
		for i := 0; i < 20; i++ {
			u := graph.VertexID(src.Intn(n))
			v := graph.VertexID(src.Intn(n))
			if u != v {
				mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{U: u, V: v, Weight: 1 + int32(src.Intn(3))})
			}
		}
		if err := st.Submit(mut); err != nil {
			t.Fatal(err)
		}
		if err := st.Quiesce(); err != nil {
			t.Fatal(err)
		}
		if step == 3 {
			if err := st.Resize(3); err != nil {
				t.Fatal(err)
			}
			if err := st.Quiesce(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.Resize(4); err != nil && err != serve.ErrKUnchanged {
		t.Fatal(err)
	}
	if err := st.Quiesce(); err != nil {
		t.Fatal(err)
	}
}

// The tentpole property: a follower that tails the stream to seq S is
// bit-identical — labels, k, shard ranges, integer cut counters — to the
// leader quiesced at S, at one and several shards, across a randomized
// mutate/resize history that spans checkpoints, segment rotations and
// journal truncation on the leader.
func TestFollowerBitIdenticalToLeader(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ldir, fdir := t.TempDir(), t.TempDir()
			leader := newLeader(t, ldir, shards, 4)
			hs, _ := leaderHTTP(t, leader, ldir)
			fl := startFollower(t, hs.URL, fdir, followerCfg(4))

			randomHistory(t, leader, 42+uint64(shards), 6)
			waitApplied(t, fl, leader.JournalSeq())
			requireSameState(t, "follower", fl.Store(), leader)

			if fl.Store().JournalSeq() != leader.JournalSeq() {
				t.Fatalf("follower journal at seq %d, leader at %d", fl.Store().JournalSeq(), leader.JournalSeq())
			}
			if !fl.Store().ReadOnly() {
				t.Fatal("follower store is not read-only")
			}
			if err := fl.Store().Submit(&graph.Mutation{NewVertices: 1}); err != serve.ErrReadOnly {
				t.Fatalf("follower Submit err = %v, want ErrReadOnly", err)
			}
		})
	}
}

// limitedWriter cuts the response after budget bytes — a torn stream
// frame mid-flight, the network fault the re-request path must absorb.
type limitedWriter struct {
	http.ResponseWriter
	budget int
}

func (lw *limitedWriter) Write(p []byte) (int, error) {
	if lw.budget <= 0 {
		return 0, fmt.Errorf("limitedWriter: budget exhausted")
	}
	if len(p) > lw.budget {
		n, _ := lw.ResponseWriter.Write(p[:lw.budget])
		lw.budget = 0
		return n, fmt.Errorf("limitedWriter: budget exhausted")
	}
	lw.budget -= len(p)
	return lw.ResponseWriter.Write(p)
}

// Kill the stream mid-frame, repeatedly: the follower must discard the
// torn frame, re-request from applied_seq, never apply a partial group,
// and still converge bit-identically.
func TestFollowerResumesAfterTornStream(t *testing.T) {
	ldir, fdir := t.TempDir(), t.TempDir()
	leader := newLeader(t, ldir, 2, -1) // no periodic checkpoints: the full history streams
	srv := fastServer(leader, ldir, func() uint64 { return 1 })

	// History first, so the torn connection cuts through real record
	// frames, not heartbeats.
	randomHistory(t, leader, 7, 6)
	S := leader.JournalSeq()

	var attempts atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /replicate/checkpoint", srv.ServeCheckpoint)
	mux.HandleFunc("GET /replicate", func(w http.ResponseWriter, r *http.Request) {
		a := attempts.Add(1)
		if a <= 4 {
			// Grow the budget per attempt so each connection makes some
			// progress but still dies mid-frame (the handshake alone is 25
			// bytes).
			srv.ServeStream(&limitedWriter{ResponseWriter: w, budget: 30 + 40*int(a)}, r)
			return
		}
		srv.ServeStream(w, r)
	})
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)

	fl := startFollower(t, hs.URL, fdir, followerCfg(-1))
	waitApplied(t, fl, S)
	requireSameState(t, "torn-stream follower", fl.Store(), leader)

	ctr := fl.Store().Counters()
	if got := ctr.ReplicaReconnects.Load(); got < 4 {
		t.Fatalf("ReplicaReconnects = %d, want >= 4", got)
	}
	// Exactly one apply per leader record: a torn frame never half-applies
	// and a resumed stream never double-applies.
	if got := ctr.ReplicaRecordsApplied.Load(); got != int64(S) {
		t.Fatalf("ReplicaRecordsApplied = %d, want %d", got, S)
	}
}

// Promotion seals a new epoch, flips the store read-write, and fences the
// deposed leader: late frames carrying the old epoch are rejected, both
// at the frame handler and at the stream handshake (409).
func TestPromoteFencesDeposedLeader(t *testing.T) {
	ldir, fdir := t.TempDir(), t.TempDir()
	leader := newLeader(t, ldir, 2, 4)
	hs, _ := leaderHTTP(t, leader, ldir)
	fl := startFollower(t, hs.URL, fdir, followerCfg(4))

	randomHistory(t, leader, 11, 4)
	waitApplied(t, fl, leader.JournalSeq())

	oldEpoch := fl.Epoch()
	sealed := fl.AppliedSeq()
	ep, err := fl.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if ep.Epoch != oldEpoch+1 || ep.SealedSeq != sealed {
		t.Fatalf("promoted to %+v, want epoch %d sealing seq %d", ep, oldEpoch+1, sealed)
	}
	if fl.Store().ReadOnly() {
		t.Fatal("promoted store still read-only")
	}
	// The new epoch is durable before writes open.
	if e, ok, err := LoadEpoch(fdir); err != nil || !ok || e != ep {
		t.Fatalf("LoadEpoch = %+v,%v,%v want %+v", e, ok, err, ep)
	}
	// A late frame from the deposed leader is fenced and counted.
	before := fl.Store().Counters().ReplicaFencedFrames.Load()
	if err := fl.handleFrame(Frame{Kind: FrameHeartbeat, Epoch: oldEpoch, LeaderSeq: sealed + 99}); err == nil {
		t.Fatal("old-epoch frame accepted after promotion")
	}
	if got := fl.Store().Counters().ReplicaFencedFrames.Load(); got != before+1 {
		t.Fatalf("ReplicaFencedFrames = %d, want %d", got, before+1)
	}
	if fl.AppliedSeq() != sealed || fl.LeaderSeq() > sealed+50 {
		t.Fatalf("fenced frame moved the watermark: applied %d, leader %d", fl.AppliedSeq(), fl.LeaderSeq())
	}
	// The promoted node accepts writes — no acknowledged state lost, new
	// writes journaled after the sealed position.
	if err := fl.Store().Submit(&graph.Mutation{NewEdges: []graph.WeightedEdgeRecord{{U: 1, V: 2, Weight: 2}}}); err != nil {
		t.Fatal(err)
	}
	if err := fl.Store().Quiesce(); err != nil {
		t.Fatal(err)
	}
	if got := fl.Store().JournalSeq(); got != sealed+1 {
		t.Fatalf("post-promotion journal seq %d, want %d", got, sealed+1)
	}
	// Promote is idempotent.
	again, err := fl.Promote()
	if err != nil || again != ep {
		t.Fatalf("second Promote = %+v,%v want %+v", again, err, ep)
	}
	// Stream handshake fencing on the leader side: a stale epoch is 409.
	resp, err := http.Get(hs.URL + "/replicate?after_seq=0&epoch=99")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale-epoch stream status %d, want 409", resp.StatusCode)
	}
}

// A crashed follower resumes from its OWN checkpoint + journal tail — the
// leader checkpoint fetch happens once, on first bootstrap only.
func TestFollowerCrashResumesFromOwnCheckpoint(t *testing.T) {
	ldir, fdir := t.TempDir(), t.TempDir()
	leader := newLeader(t, ldir, 2, 4)
	srv := fastServer(leader, ldir, func() uint64 { return 1 })

	var ckptFetches atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /replicate", srv.ServeStream)
	mux.HandleFunc("GET /replicate/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		ckptFetches.Add(1)
		srv.ServeCheckpoint(w, r)
	})
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)

	fl := startFollower(t, hs.URL, fdir, followerCfg(4))
	randomHistory(t, leader, 23, 4)
	waitApplied(t, fl, leader.JournalSeq())
	resumeAt := fl.AppliedSeq()
	if got := ckptFetches.Load(); got != 1 {
		t.Fatalf("checkpoint fetched %d times during bootstrap, want 1", got)
	}
	fl.Close() // NoFinalCheckpoint: restart recovers checkpoint + own journal tail

	// The leader moves on while the follower is down.
	randomHistory(t, leader, 29, 3)

	fl2 := startFollower(t, hs.URL, fdir, followerCfg(4))
	if got := fl2.AppliedSeq(); got < resumeAt {
		t.Fatalf("restart resumed at seq %d, want >= %d (own state, not re-bootstrap)", got, resumeAt)
	}
	if got := ckptFetches.Load(); got != 1 {
		t.Fatalf("checkpoint fetched %d times after restart, want still 1", got)
	}
	waitApplied(t, fl2, leader.JournalSeq())
	requireSameState(t, "restarted follower", fl2.Store(), leader)
}

// The truncate-under-replication race: while a follower is connected
// (tracked), leader checkpoints must not reclaim journal segments the
// stream still needs; once it disconnects, truncation resumes.
func TestRetentionProtectsConnectedFollower(t *testing.T) {
	ldir := t.TempDir()
	w, labels := twoClusters(50)
	cfg := leaderCfg(2, 2)
	cfg.Durability.SegmentBytes = 256 // many small segments
	cfg.Durability.KeepCheckpoints = 1
	leader, err := serve.NewDurable(ldir, w, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leader.Close() })
	srv := fastServer(leader, ldir, func() uint64 { return 1 })

	// A connected follower that has consumed nothing yet.
	id := srv.track(1)

	churn := func(batches int) {
		t.Helper()
		for i := 0; i < batches; i++ {
			if err := leader.Submit(&graph.Mutation{NewEdges: []graph.WeightedEdgeRecord{
				{U: graph.VertexID(i % 100), V: graph.VertexID((i*7 + 1) % 100), Weight: 2}}}); err != nil {
				t.Fatal(err)
			}
			if err := leader.Quiesce(); err != nil {
				t.Fatal(err)
			}
		}
	}
	churn(10)
	waitFor(t, 30*time.Second, "leader checkpoints", func() bool {
		return leader.Counters().Checkpoints.Load() >= 3
	})
	// Everything from seq 1 must still be readable despite the checkpoints.
	_, first, last, err := wal.ReadFramesAfter(serve.JournalDir(ldir), 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || last < 10 {
		t.Fatalf("retained frames cover [%d,%d], want [1,>=10]", first, last)
	}

	// Disconnect: the pin clears and the next checkpoint reclaims.
	srv.untrack(id)
	waitFor(t, 30*time.Second, "journal truncation after disconnect", func() bool {
		churn(2)
		_, first, _, err := wal.ReadFramesAfter(serve.JournalDir(ldir), 0, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		return first > 1
	})
}
