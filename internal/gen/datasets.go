package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Dataset names the laptop-scale synthetic analogues of the paper's real
// graphs (Table II). Each analogue preserves the topology class that drives
// Spinner's behaviour on the original; absolute sizes are scaled down by
// ~10^3 so experiments run in seconds.
type Dataset string

const (
	// LiveJournalLike (paper: LJ, 4.8M/69M, directed social): directed BA
	// graph with moderate hubs.
	LiveJournalLike Dataset = "LJ"
	// TuentiLike (paper: TU, 12M/685M, undirected social): Watts–Strogatz
	// small-world with high clustering, symmetrized.
	TuentiLike Dataset = "TU"
	// GooglePlusLike (paper: G+, 29M/462M, directed social): BA with higher
	// attachment.
	GooglePlusLike Dataset = "G+"
	// TwitterLike (paper: TW, 40M/1.5B, directed, extreme hubs): BA with
	// heavy attachment; known for high-degree hubs (Kwak et al.).
	TwitterLike Dataset = "TW"
	// FriendsterLike (paper: FR, 66M/1.8B, undirected): WS with rewiring.
	FriendsterLike Dataset = "FR"
	// YahooLike (paper: Y!, 1.4B/6.6B, directed web): power-law
	// configuration-model web graph.
	YahooLike Dataset = "Y!"
)

// AllDatasets lists the analogues in the order used by the paper's figures.
var AllDatasets = []Dataset{LiveJournalLike, GooglePlusLike, TuentiLike, TwitterLike, FriendsterLike}

// Load builds the analogue at the given vertex scale (n vertices). The seed
// makes runs reproducible. Passing n <= 0 selects the default experiment
// scale of 20 000 vertices.
func Load(d Dataset, n int, seed uint64) *graph.Graph {
	if n <= 0 {
		n = 20000
	}
	switch d {
	case LiveJournalLike:
		return BarabasiAlbert(n, 7, seed) // mean deg ~14, mild hubs
	case GooglePlusLike:
		return BarabasiAlbert(n, 8, seed^0x67)
	case TuentiLike:
		return WattsStrogatz(n, 12, 0.15, seed^0x7477)
	case TwitterLike:
		// Preferential attachment plus a handful of celebrity super-hubs
		// followed by a large fraction of all users: the Twitter graph "is
		// known for the existence of high-degree hubs" (§V-A), which drive
		// both the unbalanced random partitionings of Fig. 4(a) and the
		// worker skew of Table IV. Plain BA under-produces that skew at
		// laptop scale, so the celebrities are planted explicitly.
		g := BarabasiAlbert(n, 12, seed^0x7477697474)
		src := rng.New(seed ^ 0xce1eb)
		b := graph.NewBuilder(n, true)
		g.Edges(func(u, v graph.VertexID) { b.Add(u, v) })
		celebrities := max(3, n/10000)
		for c := 0; c < celebrities; c++ {
			hub := graph.VertexID(src.Intn(n))
			for i := 0; i < n/5; i++ {
				follower := graph.VertexID(src.Intn(n))
				if follower != hub {
					b.Add(follower, hub)
				}
			}
		}
		return b.Build()
	case FriendsterLike:
		return WattsStrogatz(n, 14, 0.3, seed^0x6672)
	case YahooLike:
		return PowerLawConfig(n, 200, 1.6, seed^0x79)
	default:
		panic(fmt.Sprintf("gen: unknown dataset %q", d))
	}
}

// GrowthBatch creates a Mutation adding approximately frac·|E| new
// undirected edges to w, modelling organic social-graph growth for the
// Fig. 7 experiments ("we add a varying number of edges that correspond to
// actual new friendships"). New edges are triadic-closure biased: with
// probability 0.7 an edge closes a length-2 path (friend-of-friend),
// otherwise it is uniform random. Existing-duplicate collisions are not
// filtered; they are rare and harmless (they bump an edge's weight role in
// the load model, as a refreshed friendship would).
func GrowthBatch(w *graph.Weighted, frac float64, seed uint64) *graph.Mutation {
	if frac < 0 {
		panic("gen: negative growth fraction")
	}
	src := rng.New(seed)
	n := w.NumVertices()
	target := int(frac * float64(w.NumEdges()))
	mut := &graph.Mutation{}
	for len(mut.NewEdges) < target {
		u := graph.VertexID(src.Intn(n))
		if w.Degree(u) == 0 {
			continue
		}
		var v graph.VertexID
		if src.Float64() < 0.7 {
			// Triadic closure: pick a neighbor's neighbor.
			nbrs := w.Neighbors(u)
			mid := nbrs[src.Intn(len(nbrs))].To
			nbrs2 := w.Neighbors(mid)
			if len(nbrs2) == 0 {
				continue
			}
			v = nbrs2[src.Intn(len(nbrs2))].To
		} else {
			v = graph.VertexID(src.Intn(n))
		}
		if v == u {
			continue
		}
		mut.NewEdges = append(mut.NewEdges, graph.WeightedEdgeRecord{U: u, V: v, Weight: 2})
	}
	return mut
}

// ChurnBatch creates a Mutation combining growth (addFrac·|E| new edges,
// triadic-closure biased like GrowthBatch) with decay (removeFrac·|E|
// existing edges deleted uniformly), modelling the paper's full dynamic
// setting where "vertices and edges [are] constantly added and removed"
// (§I). Removals are sampled without replacement from the current edges.
func ChurnBatch(w *graph.Weighted, addFrac, removeFrac float64, seed uint64) *graph.Mutation {
	if removeFrac < 0 || removeFrac > 1 {
		panic("gen: removeFrac outside [0,1]")
	}
	mut := GrowthBatch(w, addFrac, seed)
	target := int(removeFrac * float64(w.NumEdges()))
	if target == 0 {
		return mut
	}
	// Reservoir-sample existing edges to remove.
	src := rng.New(seed ^ 0xdead)
	type edge struct{ u, v graph.VertexID }
	reservoir := make([]edge, 0, target)
	seen := 0
	w.EdgesOnce(func(u, v graph.VertexID, _ int32) {
		seen++
		if len(reservoir) < target {
			reservoir = append(reservoir, edge{u, v})
		} else if j := src.Intn(seen); j < target {
			reservoir[j] = edge{u, v}
		}
	})
	for _, e := range reservoir {
		mut.RemovedEdges = append(mut.RemovedEdges, graph.Edge{From: e.u, To: e.v})
	}
	return mut
}
