package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestWattsStrogatzShape(t *testing.T) {
	g := WattsStrogatz(1000, 10, 0.3, 1)
	if g.NumVertices() != 1000 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	if g.NumEdges() != 10000 {
		t.Fatalf("m=%d, want 10000", g.NumEdges())
	}
	if !g.Directed() {
		t.Fatal("WS graph should be directed (Pregel data model)")
	}
	// Every vertex has out-degree exactly k.
	for u := 0; u < 1000; u++ {
		if g.OutDegree(graph.VertexID(u)) != 10 {
			t.Fatalf("deg(%d)=%d, want 10", u, g.OutDegree(graph.VertexID(u)))
		}
	}
}

func TestWattsStrogatzBetaZeroIsLattice(t *testing.T) {
	g := WattsStrogatz(100, 4, 0, 1)
	for u := 0; u < 100; u++ {
		for j := 1; j <= 4; j++ {
			if !g.HasEdge(graph.VertexID(u), graph.VertexID((u+j)%100)) {
				t.Fatalf("lattice edge (%d,%d) missing", u, (u+j)%100)
			}
		}
	}
}

func TestWattsStrogatzDeterministic(t *testing.T) {
	a := WattsStrogatz(500, 6, 0.3, 42)
	b := WattsStrogatz(500, 6, 0.3, 42)
	same := true
	a.Edges(func(u, v graph.VertexID) {
		if !b.HasEdge(u, v) {
			same = false
		}
	})
	if !same {
		t.Fatal("same seed produced different graphs")
	}
}

func TestWattsStrogatzRewiringHappens(t *testing.T) {
	g := WattsStrogatz(1000, 4, 0.5, 7)
	rewired := 0
	g.Edges(func(u, v graph.VertexID) {
		d := (int(v) - int(u) + 1000) % 1000
		if d > 4 {
			rewired++
		}
	})
	if rewired < 1000 { // expect ~2000 of 4000 rewired
		t.Fatalf("only %d rewired edges, expected ~2000", rewired)
	}
}

func TestWattsStrogatzInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid WS params did not panic")
		}
	}()
	WattsStrogatz(10, 10, 0.1, 1)
}

func TestBarabasiAlbertHubs(t *testing.T) {
	g := BarabasiAlbert(5000, 5, 3)
	if g.NumVertices() != 5000 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	// In-degree must be heavy tailed: max in-degree far above mean.
	indeg := make([]int, 5000)
	g.Edges(func(u, v graph.VertexID) { indeg[v]++ })
	maxIn, sum := 0, 0
	for _, d := range indeg {
		if d > maxIn {
			maxIn = d
		}
		sum += d
	}
	mean := float64(sum) / 5000
	if float64(maxIn) < 20*mean {
		t.Fatalf("max in-degree %d not hub-like (mean %.1f)", maxIn, mean)
	}
}

func TestBarabasiAlbertNewVertexDegree(t *testing.T) {
	g := BarabasiAlbert(200, 4, 9)
	for u := 5; u < 200; u++ {
		if g.OutDegree(graph.VertexID(u)) != 4 {
			t.Fatalf("vertex %d out-degree %d, want 4", u, g.OutDegree(graph.VertexID(u)))
		}
	}
}

func TestErdosRenyiEdgeCount(t *testing.T) {
	g := ErdosRenyi(500, 3000, true, 11)
	if g.NumEdges() != 3000 {
		t.Fatalf("m=%d, want 3000", g.NumEdges())
	}
	g2 := ErdosRenyi(500, 2000, false, 11)
	if g2.NumEdges() != 2000 {
		t.Fatalf("undirected m=%d, want 2000", g2.NumEdges())
	}
}

func TestErdosRenyiNoSelfLoops(t *testing.T) {
	g := ErdosRenyi(100, 500, true, 13)
	g.Edges(func(u, v graph.VertexID) {
		if u == v {
			t.Fatalf("self loop at %d", u)
		}
	})
}

func TestPowerLawConfigSkew(t *testing.T) {
	g := PowerLawConfig(5000, 100, 1.5, 17)
	st := graph.Degrees(g)
	if st.Max < 5*int(st.Mean+1) {
		t.Fatalf("degree distribution not skewed: %+v", st)
	}
	if g.NumEdges() == 0 {
		t.Fatal("empty graph")
	}
}

func TestRMATShape(t *testing.T) {
	g := RMAT(10, 8000, 19)
	if g.NumVertices() != 1024 {
		t.Fatalf("n=%d, want 1024", g.NumVertices())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 8000 {
		t.Fatalf("m=%d out of range", g.NumEdges())
	}
	// R-MAT with Graph500 params concentrates edges on low IDs.
	low, high := int64(0), int64(0)
	g.Edges(func(u, v graph.VertexID) {
		if u < 512 {
			low++
		} else {
			high++
		}
	})
	if low <= high {
		t.Fatalf("no skew: low=%d high=%d", low, high)
	}
}

func TestPlantedPartitionGroundTruth(t *testing.T) {
	g, truth := PlantedPartition(1200, 4, 16, 2, 23)
	if g.NumVertices() != 1200 || len(truth) != 1200 {
		t.Fatal("wrong sizes")
	}
	// Measure locality of ground truth labels — should be high.
	intra, total := 0, 0
	g.Edges(func(u, v graph.VertexID) {
		if u < v {
			total++
			if truth[u] == truth[v] {
				intra++
			}
		}
	})
	frac := float64(intra) / float64(total)
	if frac < 0.8 {
		t.Fatalf("planted locality %.2f < 0.8", frac)
	}
}

func TestLoadAllDatasets(t *testing.T) {
	for _, d := range append(append([]Dataset{}, AllDatasets...), YahooLike) {
		g := Load(d, 2000, 1)
		if g.NumVertices() != 2000 {
			t.Fatalf("%s: n=%d", d, g.NumVertices())
		}
		if g.NumEdges() == 0 {
			t.Fatalf("%s: no edges", d)
		}
	}
}

func TestLoadDefaultScale(t *testing.T) {
	g := Load(TuentiLike, 0, 1)
	if g.NumVertices() != 20000 {
		t.Fatalf("default scale n=%d, want 20000", g.NumVertices())
	}
}

func TestLoadUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dataset did not panic")
		}
	}()
	Load(Dataset("nope"), 100, 1)
}

func TestGrowthBatchSize(t *testing.T) {
	w := graph.Convert(WattsStrogatz(2000, 8, 0.2, 29))
	mut := GrowthBatch(w, 0.05, 31)
	want := int(0.05 * float64(w.NumEdges()))
	if len(mut.NewEdges) != want {
		t.Fatalf("batch size %d, want %d", len(mut.NewEdges), want)
	}
	for _, e := range mut.NewEdges {
		if e.U == e.V {
			t.Fatal("growth batch contains self loop")
		}
	}
}

func TestGrowthBatchDeterministic(t *testing.T) {
	w := graph.Convert(WattsStrogatz(1000, 6, 0.2, 29))
	a := GrowthBatch(w, 0.02, 5)
	b := GrowthBatch(w, 0.02, 5)
	if len(a.NewEdges) != len(b.NewEdges) {
		t.Fatal("nondeterministic batch size")
	}
	for i := range a.NewEdges {
		if a.NewEdges[i] != b.NewEdges[i] {
			t.Fatal("nondeterministic batch content")
		}
	}
}

func TestGrowthBatchApplies(t *testing.T) {
	w := graph.Convert(WattsStrogatz(1000, 6, 0.2, 29))
	before := w.NumEdges()
	mut := GrowthBatch(w, 0.1, 7)
	if _, err := mut.Apply(w); err != nil {
		t.Fatal(err)
	}
	if w.NumEdges() != before+int64(len(mut.NewEdges)) {
		t.Fatal("mutation did not apply cleanly")
	}
}

func TestChurnBatch(t *testing.T) {
	w := graph.Convert(WattsStrogatz(2000, 8, 0.2, 41))
	before := w.NumEdges()
	mut := ChurnBatch(w, 0.05, 0.03, 43)
	wantAdds := int(0.05 * float64(before))
	wantRemovals := int(0.03 * float64(before))
	if len(mut.NewEdges) != wantAdds {
		t.Fatalf("adds=%d, want %d", len(mut.NewEdges), wantAdds)
	}
	if len(mut.RemovedEdges) != wantRemovals {
		t.Fatalf("removals=%d, want %d", len(mut.RemovedEdges), wantRemovals)
	}
	if _, err := mut.Apply(w); err != nil {
		t.Fatal(err)
	}
	if w.NumEdges() != before+int64(wantAdds)-int64(wantRemovals) {
		t.Fatalf("edges=%d after churn", w.NumEdges())
	}
}

func TestChurnBatchNoRemovals(t *testing.T) {
	w := graph.Convert(WattsStrogatz(500, 6, 0.2, 47))
	mut := ChurnBatch(w, 0.02, 0, 49)
	if len(mut.RemovedEdges) != 0 {
		t.Fatal("unexpected removals")
	}
}

func TestChurnBatchInvalidFrac(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("removeFrac > 1 did not panic")
		}
	}()
	w := graph.Convert(WattsStrogatz(100, 4, 0.2, 51))
	ChurnBatch(w, 0, 1.5, 53)
}
