// Package gen generates the synthetic graphs used throughout the
// reproduction in place of the paper's proprietary datasets (Table II:
// LiveJournal, Tuenti, Google+, Twitter, Friendster, Yahoo!).
//
// The substitution rationale (documented per generator and in DESIGN.md):
// Spinner's behaviour depends on the topology *class* — small-world
// clustering, heavy-tailed hub skew, community structure, directedness —
// not on dataset identity. The paper itself uses Watts–Strogatz graphs for
// every scalability experiment (§V-B). We therefore provide:
//
//   - WattsStrogatz: the paper's own synthetic workload (ring lattice with
//     rewiring), for scalability and dynamic-graph experiments.
//   - BarabasiAlbert: preferential attachment, producing the heavy-tailed
//     hub structure of the Twitter graph that drives the unbalanced random
//     partitionings in Fig. 4(a).
//   - PowerLawConfig: a configuration-model graph with a prescribed
//     power-law degree sequence, directed, for web-graph (Yahoo!) analogues.
//   - ErdosRenyi: G(n,m) noise baseline.
//   - RMAT: Kronecker-style recursive matrix graphs (another standard
//     social/web surrogate).
//   - PlantedPartition: a stochastic block model with k ground-truth
//     communities, used by tests to verify that Spinner actually recovers
//     locality that exists.
//
// All generators are deterministic functions of their parameters and seed.
package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// WattsStrogatz generates the small-world graph of Watts & Strogatz (1998)
// exactly as used in §V-B of the paper: n vertices on a ring lattice, each
// connected to its k nearest clockwise neighbors (so out-degree k), with
// each edge rewired to a uniformly random target with probability beta.
// The result is a directed graph (matching the Pregel data model the paper
// loads it into); Convert produces the undirected weighted form.
//
// The paper's scalability runs use out-degree 40 and beta = 0.3.
func WattsStrogatz(n, k int, beta float64, seed uint64) *graph.Graph {
	if n <= 0 || k <= 0 || k >= n {
		panic(fmt.Sprintf("gen: WattsStrogatz invalid n=%d k=%d", n, k))
	}
	src := rng.New(seed)
	g := graph.New(n, true)
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			if src.Float64() < beta {
				// Rewire to a uniform random non-self target. Collisions with
				// existing targets are tolerated at generation and removed by
				// conversion-time semantics; they are rare for k << n.
				for {
					v = src.Intn(n)
					if v != u {
						break
					}
				}
			}
			g.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return g
}

// BarabasiAlbert generates a scale-free graph by preferential attachment:
// each new vertex attaches m edges to existing vertices chosen with
// probability proportional to their current degree. The result is directed
// (new→old), with heavy-tailed in-degree like follower graphs (Twitter).
func BarabasiAlbert(n, m int, seed uint64) *graph.Graph {
	if n <= 0 || m <= 0 || m >= n {
		panic(fmt.Sprintf("gen: BarabasiAlbert invalid n=%d m=%d", n, m))
	}
	src := rng.New(seed)
	g := graph.New(n, true)
	// targets holds one entry per edge endpoint, so sampling uniformly from
	// it realizes degree-proportional selection.
	targets := make([]graph.VertexID, 0, 2*n*m)
	// Seed clique over the first m+1 vertices.
	for u := 0; u <= m; u++ {
		v := (u + 1) % (m + 1)
		g.AddEdge(graph.VertexID(u), graph.VertexID(v))
		targets = append(targets, graph.VertexID(u), graph.VertexID(v))
	}
	chosen := make(map[graph.VertexID]struct{}, m)
	for u := m + 1; u < n; u++ {
		clear(chosen)
		for len(chosen) < m {
			v := targets[src.Intn(len(targets))]
			if int(v) == u {
				continue
			}
			chosen[v] = struct{}{}
		}
		for v := range chosen {
			g.AddEdge(graph.VertexID(u), v)
			targets = append(targets, graph.VertexID(u), v)
		}
	}
	return g
}

// ErdosRenyi generates G(n, m): m distinct directed edges chosen uniformly
// among all ordered non-self pairs.
func ErdosRenyi(n int, m int64, directed bool, seed uint64) *graph.Graph {
	maxEdges := int64(n) * int64(n-1)
	if !directed {
		maxEdges /= 2
	}
	if n <= 1 || m < 0 || m > maxEdges {
		panic(fmt.Sprintf("gen: ErdosRenyi invalid n=%d m=%d", n, m))
	}
	src := rng.New(seed)
	b := graph.NewBuilder(n, directed)
	// Oversample then dedup via Builder; iterate until enough edges remain.
	g := b.Build()
	need := m
	for need > 0 {
		bb := graph.NewBuilder(n, directed)
		g.Edges(func(u, v graph.VertexID) {
			if directed || u < v {
				bb.Add(u, v)
			}
		})
		for i := int64(0); i < need*2; i++ {
			u := graph.VertexID(src.Intn(n))
			v := graph.VertexID(src.Intn(n))
			if u != v {
				bb.Add(u, v)
			}
		}
		g = bb.Build()
		if g.NumEdges() >= m {
			break
		}
		need = m - g.NumEdges()
	}
	// Trim any surplus deterministically (drop highest-ordered edges).
	if g.NumEdges() > m {
		bb := graph.NewBuilder(n, directed)
		var kept int64
		g.Edges(func(u, v graph.VertexID) {
			if !directed && u > v {
				return
			}
			if kept < m {
				bb.Add(u, v)
				kept++
			}
		})
		g = bb.Build()
	}
	return g
}

// PowerLawConfig generates a directed graph from a configuration model with
// out-degrees drawn from a Zipf distribution with exponent alpha over
// [1, maxDeg]. Targets are chosen degree-proportionally, producing
// correlated in-degree skew like a web graph.
func PowerLawConfig(n, maxDeg int, alpha float64, seed uint64) *graph.Graph {
	if n <= 1 || maxDeg < 1 {
		panic(fmt.Sprintf("gen: PowerLawConfig invalid n=%d maxDeg=%d", n, maxDeg))
	}
	src := rng.New(seed)
	z := rng.NewZipf(src, maxDeg, alpha)
	b := graph.NewBuilder(n, true)
	for u := 0; u < n; u++ {
		d := z.Next() + 1
		for j := 0; j < d; j++ {
			// Zipf-rank targets concentrate in-links on low-ID "hub" vertices.
			v := z.Next() * (n / maxDeg)
			if n >= maxDeg {
				v += src.Intn(n / maxDeg)
			} else {
				v = src.Intn(n)
			}
			if v >= n {
				v = src.Intn(n)
			}
			if v != u {
				b.Add(graph.VertexID(u), graph.VertexID(v))
			}
		}
	}
	return b.Build()
}

// RMAT generates a directed R-MAT graph with 2^scale vertices and
// approximately m edges, using the standard (a,b,c,d) = (0.57,0.19,0.19,0.05)
// Graph500 parameters.
func RMAT(scale int, m int64, seed uint64) *graph.Graph {
	if scale < 1 || scale > 30 || m <= 0 {
		panic(fmt.Sprintf("gen: RMAT invalid scale=%d m=%d", scale, m))
	}
	const a, b, c = 0.57, 0.19, 0.19
	src := rng.New(seed)
	n := 1 << scale
	bld := graph.NewBuilder(n, true)
	for i := int64(0); i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := src.Float64()
			switch {
			case r < a:
				// upper-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u != v {
			bld.Add(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return bld.Build()
}

// PlantedPartition generates an undirected stochastic block model with k
// equal-size communities: each vertex gets degIn expected intra-community
// edges and degOut expected inter-community edges. Tests use it to verify
// that partitioners recover locality that is actually present: a perfect
// k-way partitioning has φ = degIn/(degIn+degOut).
func PlantedPartition(n, k, degIn, degOut int, seed uint64) (*graph.Graph, []int32) {
	if n < k || k < 1 {
		panic(fmt.Sprintf("gen: PlantedPartition invalid n=%d k=%d", n, k))
	}
	src := rng.New(seed)
	truth := make([]int32, n)
	for v := 0; v < n; v++ {
		truth[v] = int32(v % k)
	}
	// Community member lists.
	members := make([][]graph.VertexID, k)
	for v := 0; v < n; v++ {
		c := truth[v]
		members[c] = append(members[c], graph.VertexID(v))
	}
	b := graph.NewBuilder(n, false)
	for v := 0; v < n; v++ {
		c := truth[v]
		own := members[c]
		for i := 0; i < degIn/2; i++ {
			u := own[src.Intn(len(own))]
			if u != graph.VertexID(v) {
				b.Add(graph.VertexID(v), u)
			}
		}
		for i := 0; i < degOut/2; i++ {
			u := graph.VertexID(src.Intn(n))
			if u != graph.VertexID(v) && truth[u] != c {
				b.Add(graph.VertexID(v), u)
			}
		}
	}
	return b.Build(), truth
}
