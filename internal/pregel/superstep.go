package pregel

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/rng"
)

// addrMsg is a message in flight, addressed to a vertex.
type addrMsg[M any] struct {
	to      VertexID
	payload M
}

// Context is the per-worker view handed to Compute. It is valid only for
// the duration of the Compute call chain on its worker and must not be
// retained. The engine keeps one Context per worker alive across
// supersteps so its outbox arenas retain their capacity; reset truncates
// them between supersteps.
type Context[V, E, M any] struct {
	engine   *Engine[V, E, M]
	workerID int
	out      [][]addrMsg[M] // indexed by destination worker (no-combiner path)

	// Send-side combining plane, allocated only when a combiner is set:
	// combVal[dst] holds this worker's staged merged payload for dst,
	// valid iff combEpoch[dst] == epoch (stamping avoids a clearing pass),
	// and combDst[w] lists staged destinations owned by worker w in first-
	// send order (the deterministic delivery order).
	combVal   []M
	combEpoch []uint32
	combDst   [][]VertexID
	epoch     uint32

	sentLoc     int64
	sentRem     int64
	edges       int64
	computed    int64
	stayActive  int64 // computed vertices that did not vote to halt
	reactivated int64 // owned halted vertices woken by a delivery
	rand        *rng.Source
}

// reset prepares the context for the next superstep, truncating the
// outbox arenas in place so their capacity is reused.
func (c *Context[V, E, M]) reset() {
	c.sentLoc, c.sentRem, c.edges, c.computed = 0, 0, 0, 0
	c.stayActive, c.reactivated = 0, 0
	for i := range c.out {
		c.out[i] = c.out[i][:0]
	}
	for i := range c.combDst {
		c.combDst[i] = c.combDst[i][:0]
	}
	c.epoch++
}

// Superstep returns the current superstep number (0-based).
func (c *Context[V, E, M]) Superstep() int { return c.engine.superstep }

// NumVertices returns the global vertex count.
func (c *Context[V, E, M]) NumVertices() int { return len(c.engine.vertices) }

// NumWorkers returns the worker count.
func (c *Context[V, E, M]) NumWorkers() int { return c.engine.cfg.NumWorkers }

// WorkerID returns the executing worker's ID.
func (c *Context[V, E, M]) WorkerID() int { return c.workerID }

// WorkerState returns this worker's shared state, created by the program's
// InitWorker (nil if the program is not a WorkerInitializer). All vertices
// computed on the same worker see the same value — this is the mechanism
// behind §IV-A4's asynchronous per-worker computation.
func (c *Context[V, E, M]) WorkerState() any { return c.engine.workerState[c.workerID] }

// Rand returns this worker's deterministic random stream.
func (c *Context[V, E, M]) Rand() *rng.Source { return c.rand }

// SendTo queues a message for delivery to dst at the next superstep. When
// a combiner is installed the message is merged into this worker's staging
// slot for dst instead of being queued, so at most one message per
// (worker, destination) pair travels to the barrier; the sent counters
// then reflect post-combining traffic.
func (c *Context[V, E, M]) SendTo(dst VertexID, msg M) {
	e := c.engine
	if e.combiner != nil {
		if c.combEpoch[dst] == c.epoch {
			c.combVal[dst] = e.combiner(c.combVal[dst], msg)
			return
		}
		c.combEpoch[dst] = c.epoch
		c.combVal[dst] = msg
		w := e.place[dst]
		c.combDst[w] = append(c.combDst[w], dst)
		if int(w) == c.workerID {
			c.sentLoc++
		} else {
			c.sentRem++
		}
		return
	}
	w := e.place[dst]
	c.out[w] = append(c.out[w], addrMsg[M]{to: dst, payload: msg})
	if int(w) == c.workerID {
		c.sentLoc++
	} else {
		c.sentRem++
	}
}

// Aggregate contributes value to element idx of the named aggregator. The
// contribution becomes visible in the merged value after the barrier.
func (c *Context[V, E, M]) Aggregate(name string, idx int, value float64) {
	a, ok := c.engine.aggs[name]
	if !ok {
		panic(fmt.Sprintf("pregel: unknown aggregator %q", name))
	}
	p := a.partials[c.workerID]
	switch a.op {
	case AggSum:
		p[idx] += value
	case AggMin:
		if value < p[idx] {
			p[idx] = value
		}
	case AggMax:
		if value > p[idx] {
			p[idx] = value
		}
	}
}

// AggregatedValue returns element idx of the named aggregator as merged at
// the end of the previous superstep (Pregel semantics).
func (c *Context[V, E, M]) AggregatedValue(name string, idx int) float64 {
	a, ok := c.engine.aggs[name]
	if !ok {
		panic(fmt.Sprintf("pregel: unknown aggregator %q", name))
	}
	return a.current[idx]
}

// AggregatedVector copies the named aggregator's full merged vector into
// dst (which must have the aggregator's size) and returns it.
func (c *Context[V, E, M]) AggregatedVector(name string, dst []float64) []float64 {
	a, ok := c.engine.aggs[name]
	if !ok {
		panic(fmt.Sprintf("pregel: unknown aggregator %q", name))
	}
	copy(dst, a.current)
	return dst
}

// CountEdges lets Compute report how many edges it scanned; the cluster
// cost model uses it as the compute term. Programs may skip it; the engine
// then falls back to counting processed vertices.
func (c *Context[V, E, M]) CountEdges(n int) { c.edges += int64(n) }

// Master is the interface handed to MasterCompute between supersteps.
type Master struct {
	superstep   int
	numVertices int
	halted      bool
	aggs        map[string]*aggregator
}

// Superstep returns the superstep that just finished.
func (m *Master) Superstep() int { return m.superstep }

// NumVertices returns the global vertex count.
func (m *Master) NumVertices() int { return m.numVertices }

// Halt stops the computation after this master compute.
func (m *Master) Halt() { m.halted = true }

// Agg returns the merged value of the named aggregator (live slice; treat
// as read-only and use SetAgg to modify).
func (m *Master) Agg(name string) []float64 {
	a, ok := m.aggs[name]
	if !ok {
		panic(fmt.Sprintf("pregel: unknown aggregator %q", name))
	}
	return a.current
}

// SetAgg overwrites the named aggregator's merged value; vertices read it
// during the next superstep. The Spinner master uses this to publish the
// migration probabilities.
func (m *Master) SetAgg(name string, v []float64) {
	a, ok := m.aggs[name]
	if !ok {
		panic(fmt.Sprintf("pregel: unknown aggregator %q", name))
	}
	if len(v) != a.size {
		panic(fmt.Sprintf("pregel: SetAgg(%q) size %d != %d", name, len(v), a.size))
	}
	copy(a.current, v)
}

// runSuperstep executes one BSP superstep: parallel compute, message
// routing, aggregator merge. All message buffers are engine-owned arenas
// reused across supersteps; in steady state the only per-superstep
// allocations are the stats record and the worker goroutines themselves.
func (e *Engine[V, E, M]) runSuperstep() {
	start := time.Now()
	w := e.cfg.NumWorkers
	var wg sync.WaitGroup
	for wk := 0; wk < w; wk++ {
		ctx := e.ctxs[wk]
		ctx.reset()
		wg.Add(1)
		go func(wk int, ctx *Context[V, E, M]) {
			defer wg.Done()
			for _, vid := range e.byWorker[wk] {
				v := &e.vertices[vid]
				msgs := e.inbox[vid]
				if v.halted && len(msgs) == 0 {
					continue
				}
				v.halted = false
				ctx.computed++
				e.prog.Compute(ctx, v, msgs)
				if !v.halted {
					ctx.stayActive++
				}
			}
		}(wk, ctx)
	}
	wg.Wait()

	// Accounting: one backing array for all five per-worker vectors (they
	// escape into e.stats, so they cannot be arena-reused).
	buf := make([]int64, 5*w)
	st := SuperstepStats{
		Superstep:      e.superstep,
		SentLocal:      buf[0*w : 1*w : 1*w],
		SentRemote:     buf[1*w : 2*w : 2*w],
		Received:       buf[2*w : 3*w : 3*w],
		ReceivedRemote: buf[3*w : 4*w : 4*w],
		ComputeEdges:   buf[4*w : 5*w : 5*w],
	}
	for wk, ctx := range e.ctxs {
		st.SentLocal[wk] = ctx.sentLoc
		st.SentRemote[wk] = ctx.sentRem
		st.ComputeEdges[wk] = ctx.edges
	}

	// Delivery: each destination worker truncates, in place, the inboxes
	// its vertices consumed this superstep (the pending list makes this
	// O(delivered vertices), not O(n)), then drains, in source-worker order
	// for determinism, the outboxes — or combiner staging slots — addressed
	// to it. Halted vertices woken by a delivery are counted for the
	// incremental active tracking.
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			pend := e.pending[wk]
			for _, vid := range pend {
				e.inbox[vid] = e.inbox[vid][:0]
			}
			pend = pend[:0]
			var received, receivedRemote, reactivated int64
			if e.combiner != nil {
				for src := 0; src < w; src++ {
					remote := src != wk
					sctx := e.ctxs[src]
					for _, dst := range sctx.combDst[wk] {
						received++
						if remote {
							receivedRemote++
						}
						box := e.inbox[dst]
						if len(box) > 0 {
							box[0] = e.combiner(box[0], sctx.combVal[dst])
						} else {
							box = append(box, sctx.combVal[dst])
							pend = append(pend, dst)
						}
						e.inbox[dst] = box
						if e.vertices[dst].halted {
							e.vertices[dst].halted = false
							reactivated++
						}
					}
				}
			} else {
				// Two-pass arena delivery: count messages per destination,
				// carve capacity-clamped windows out of this worker's flat
				// arena, then fill in source-worker order. Inboxes are views
				// into the arena, so a superstep costs zero allocations once
				// the arena has grown to the high-water message volume.
				counts := e.inboxCount
				var total int32
				for src := 0; src < w; src++ {
					remote := src != wk
					for _, am := range e.ctxs[src].out[wk] {
						if counts[am.to] == 0 {
							pend = append(pend, am.to)
							if e.vertices[am.to].halted {
								e.vertices[am.to].halted = false
								reactivated++
							}
						}
						counts[am.to]++
						total++
						if remote {
							receivedRemote++
						}
					}
				}
				received = int64(total)
				arena := e.inboxArena[wk]
				if int(total) > cap(arena) {
					arena = make([]M, 0, total)
					e.inboxArena[wk] = arena
				}
				var off int32
				for _, vid := range pend {
					c := counts[vid]
					e.inbox[vid] = arena[off : off : off+c]
					off += c
					counts[vid] = 0
				}
				for src := 0; src < w; src++ {
					for _, am := range e.ctxs[src].out[wk] {
						e.inbox[am.to] = append(e.inbox[am.to], am.payload)
					}
				}
			}
			e.pending[wk] = pend
			e.ctxs[wk].reactivated = reactivated
			st.Received[wk] = received
			st.ReceivedRemote[wk] = receivedRemote
		}(wk)
	}
	wg.Wait()

	// Merge aggregators at the barrier. Each aggregator merges into its own
	// reusable scratch vector; aggregators are independent, so when the
	// merge work is large enough to repay goroutine spawns they merge in
	// parallel, each still walking workers in order (deterministic either
	// way). Small vectors — the common case — merge serially: the spawn
	// plus WaitGroup costs more than the few KB of folding they would hide.
	parallelMerge := false
	if len(e.aggOrder) > 1 {
		var elems int
		for _, name := range e.aggOrder {
			elems += e.aggs[name].size
		}
		parallelMerge = elems*w >= 1<<14
	}
	for _, name := range e.aggOrder {
		if !parallelMerge {
			e.aggs[name].merge(w)
			continue
		}
		wg.Add(1)
		go func(a *aggregator) {
			defer wg.Done()
			a.merge(w)
		}(e.aggs[name])
	}
	if parallelMerge {
		wg.Wait()
	}

	var active, nextActive int64
	for _, ctx := range e.ctxs {
		active += ctx.computed
		nextActive += ctx.stayActive + ctx.reactivated
	}
	e.active = nextActive
	st.Active = active
	st.Duration = time.Since(start)
	e.stats = append(e.stats, st)
}

// merge folds the per-worker partials into current via the reusable
// scratch buffer and resets the partials for the next superstep.
func (a *aggregator) merge(w int) {
	merged := a.scratch
	for i := range merged {
		switch a.op {
		case AggSum:
			merged[i] = 0
		case AggMin:
			merged[i] = inf
		case AggMax:
			merged[i] = -inf
		}
	}
	for wk := 0; wk < w; wk++ {
		p := a.partials[wk]
		for i := range merged {
			switch a.op {
			case AggSum:
				merged[i] += p[i]
			case AggMin:
				if p[i] < merged[i] {
					merged[i] = p[i]
				}
			case AggMax:
				if p[i] > merged[i] {
					merged[i] = p[i]
				}
			}
		}
	}
	if a.persistent {
		for i := range merged {
			a.current[i] += merged[i]
		}
	} else {
		copy(a.current, merged)
	}
	a.resetPartials()
}
