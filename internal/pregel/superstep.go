package pregel

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/rng"
)

// addrMsg is a message in flight, addressed to a vertex.
type addrMsg[M any] struct {
	to      VertexID
	payload M
}

// Context is the per-worker view handed to Compute. It is valid only for
// the duration of the Compute call chain on its worker and must not be
// retained.
type Context[V, E, M any] struct {
	engine   *Engine[V, E, M]
	workerID int
	out      [][]addrMsg[M] // indexed by destination worker
	sentLoc  int64
	sentRem  int64
	edges    int64
	computed int64
	rand     *rng.Source
}

// Superstep returns the current superstep number (0-based).
func (c *Context[V, E, M]) Superstep() int { return c.engine.superstep }

// NumVertices returns the global vertex count.
func (c *Context[V, E, M]) NumVertices() int { return len(c.engine.vertices) }

// NumWorkers returns the worker count.
func (c *Context[V, E, M]) NumWorkers() int { return c.engine.cfg.NumWorkers }

// WorkerID returns the executing worker's ID.
func (c *Context[V, E, M]) WorkerID() int { return c.workerID }

// WorkerState returns this worker's shared state, created by the program's
// InitWorker (nil if the program is not a WorkerInitializer). All vertices
// computed on the same worker see the same value — this is the mechanism
// behind §IV-A4's asynchronous per-worker computation.
func (c *Context[V, E, M]) WorkerState() any { return c.engine.workerState[c.workerID] }

// Rand returns this worker's deterministic random stream.
func (c *Context[V, E, M]) Rand() *rng.Source { return c.rand }

// SendTo queues a message for delivery to dst at the next superstep.
func (c *Context[V, E, M]) SendTo(dst VertexID, msg M) {
	w := c.engine.place[dst]
	c.out[w] = append(c.out[w], addrMsg[M]{to: dst, payload: msg})
	if int(w) == c.workerID {
		c.sentLoc++
	} else {
		c.sentRem++
	}
}

// Aggregate contributes value to element idx of the named aggregator. The
// contribution becomes visible in the merged value after the barrier.
func (c *Context[V, E, M]) Aggregate(name string, idx int, value float64) {
	a, ok := c.engine.aggs[name]
	if !ok {
		panic(fmt.Sprintf("pregel: unknown aggregator %q", name))
	}
	p := a.partials[c.workerID]
	switch a.op {
	case AggSum:
		p[idx] += value
	case AggMin:
		if value < p[idx] {
			p[idx] = value
		}
	case AggMax:
		if value > p[idx] {
			p[idx] = value
		}
	}
}

// AggregatedValue returns element idx of the named aggregator as merged at
// the end of the previous superstep (Pregel semantics).
func (c *Context[V, E, M]) AggregatedValue(name string, idx int) float64 {
	a, ok := c.engine.aggs[name]
	if !ok {
		panic(fmt.Sprintf("pregel: unknown aggregator %q", name))
	}
	return a.current[idx]
}

// AggregatedVector copies the named aggregator's full merged vector into
// dst (which must have the aggregator's size) and returns it.
func (c *Context[V, E, M]) AggregatedVector(name string, dst []float64) []float64 {
	a, ok := c.engine.aggs[name]
	if !ok {
		panic(fmt.Sprintf("pregel: unknown aggregator %q", name))
	}
	copy(dst, a.current)
	return dst
}

// CountEdges lets Compute report how many edges it scanned; the cluster
// cost model uses it as the compute term. Programs may skip it; the engine
// then falls back to counting processed vertices.
func (c *Context[V, E, M]) CountEdges(n int) { c.edges += int64(n) }

// Master is the interface handed to MasterCompute between supersteps.
type Master struct {
	superstep   int
	numVertices int
	halted      bool
	aggs        map[string]*aggregator
}

// Superstep returns the superstep that just finished.
func (m *Master) Superstep() int { return m.superstep }

// NumVertices returns the global vertex count.
func (m *Master) NumVertices() int { return m.numVertices }

// Halt stops the computation after this master compute.
func (m *Master) Halt() { m.halted = true }

// Agg returns the merged value of the named aggregator (live slice; treat
// as read-only and use SetAgg to modify).
func (m *Master) Agg(name string) []float64 {
	a, ok := m.aggs[name]
	if !ok {
		panic(fmt.Sprintf("pregel: unknown aggregator %q", name))
	}
	return a.current
}

// SetAgg overwrites the named aggregator's merged value; vertices read it
// during the next superstep. The Spinner master uses this to publish the
// migration probabilities.
func (m *Master) SetAgg(name string, v []float64) {
	a, ok := m.aggs[name]
	if !ok {
		panic(fmt.Sprintf("pregel: unknown aggregator %q", name))
	}
	if len(v) != a.size {
		panic(fmt.Sprintf("pregel: SetAgg(%q) size %d != %d", name, len(v), a.size))
	}
	copy(a.current, v)
}

// runSuperstep executes one BSP superstep: parallel compute, message
// routing, aggregator merge.
func (e *Engine[V, E, M]) runSuperstep() {
	start := time.Now()
	w := e.cfg.NumWorkers
	ctxs := make([]*Context[V, E, M], w)
	var wg sync.WaitGroup
	for wk := 0; wk < w; wk++ {
		ctx := &Context[V, E, M]{engine: e, workerID: wk, rand: e.workerRand[wk]}
		ctx.out = make([][]addrMsg[M], w)
		ctxs[wk] = ctx
		wg.Add(1)
		go func(wk int, ctx *Context[V, E, M]) {
			defer wg.Done()
			for _, vid := range e.byWorker[wk] {
				v := &e.vertices[vid]
				msgs := e.inbox[vid]
				if v.halted && len(msgs) == 0 {
					continue
				}
				v.halted = false
				ctx.computed++
				e.prog.Compute(ctx, v, msgs)
			}
		}(wk, ctx)
	}
	wg.Wait()

	// Accounting.
	st := SuperstepStats{
		Superstep:      e.superstep,
		SentLocal:      make([]int64, w),
		SentRemote:     make([]int64, w),
		Received:       make([]int64, w),
		ReceivedRemote: make([]int64, w),
		ComputeEdges:   make([]int64, w),
	}
	for wk, ctx := range ctxs {
		st.SentLocal[wk] = ctx.sentLoc
		st.SentRemote[wk] = ctx.sentRem
		st.ComputeEdges[wk] = ctx.edges
	}

	// Clear inboxes of vertices that just computed (they consumed them),
	// then deliver fresh messages: each destination worker drains, in
	// source-worker order for determinism, the outboxes addressed to it.
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for _, vid := range e.byWorker[wk] {
				if len(e.inbox[vid]) > 0 {
					e.inbox[vid] = e.inbox[vid][:0]
				}
			}
			var received, receivedRemote int64
			for src := 0; src < w; src++ {
				remote := src != wk
				for _, am := range ctxs[src].out[wk] {
					received++
					if remote {
						receivedRemote++
					}
					box := e.inbox[am.to]
					if e.combiner != nil && len(box) == 1 {
						box[0] = e.combiner(box[0], am.payload)
					} else {
						box = append(box, am.payload)
					}
					e.inbox[am.to] = box
					e.vertices[am.to].halted = false
				}
			}
			st.Received[wk] = received
			st.ReceivedRemote[wk] = receivedRemote
		}(wk)
	}
	wg.Wait()

	// Merge aggregators in registration order, worker order (deterministic).
	for _, name := range e.aggOrder {
		a := e.aggs[name]
		merged := make([]float64, a.size)
		switch a.op {
		case AggMin:
			for i := range merged {
				merged[i] = inf
			}
		case AggMax:
			for i := range merged {
				merged[i] = -inf
			}
		}
		for wk := 0; wk < w; wk++ {
			p := a.partials[wk]
			for i := range merged {
				switch a.op {
				case AggSum:
					merged[i] += p[i]
				case AggMin:
					if p[i] < merged[i] {
						merged[i] = p[i]
					}
				case AggMax:
					if p[i] > merged[i] {
						merged[i] = p[i]
					}
				}
			}
		}
		if a.persistent {
			for i := range merged {
				a.current[i] += merged[i]
			}
		} else {
			copy(a.current, merged)
		}
		a.resetPartials()
	}

	var active int64
	for _, ctx := range ctxs {
		active += ctx.computed
	}
	st.Active = active
	st.Duration = time.Since(start)
	e.stats = append(e.stats, st)
}
