package pregel

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// maxProg is the classic Pregel example: propagate the maximum vertex value
// through the graph. Exercises vote-to-halt and reactivation.
type maxProg struct{}

func (maxProg) Compute(ctx *Context[int64, struct{}, int64], v *Vertex[int64, struct{}], msgs []int64) {
	changed := ctx.Superstep() == 0
	for _, m := range msgs {
		if m > v.Value {
			v.Value = m
			changed = true
		}
	}
	if changed {
		for _, e := range v.Edges {
			ctx.SendTo(e.To, v.Value)
		}
	}
	v.halted = true
}

func buildVertices(g *graph.Graph, val func(VertexID) int64) []Vertex[int64, struct{}] {
	vs := make([]Vertex[int64, struct{}], g.NumVertices())
	for i := range vs {
		vs[i].ID = VertexID(i)
		vs[i].Value = val(VertexID(i))
		for _, to := range g.Neighbors(VertexID(i)) {
			vs[i].Edges = append(vs[i].Edges, Edge[struct{}]{To: to})
		}
	}
	return vs
}

func TestMaxPropagation(t *testing.T) {
	g := gen.WattsStrogatz(500, 6, 0.2, 1)
	// Symmetrize so the max can reach everyone.
	und := graph.New(500, false)
	g.Edges(func(u, v VertexID) { und.AddEdge(u, v) })
	e := NewEngine[int64, struct{}, int64](Config{NumWorkers: 4, Seed: 1}, maxProg{})
	if err := e.SetVertices(buildVertices(und, func(v VertexID) int64 { return int64(v) })); err != nil {
		t.Fatal(err)
	}
	steps, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if steps == 0 {
		t.Fatal("no supersteps ran")
	}
	for i, v := range e.Vertices() {
		if v.Value != 499 {
			t.Fatalf("vertex %d converged to %d, want 499", i, v.Value)
		}
	}
}

func TestRunWithoutVertices(t *testing.T) {
	e := NewEngine[int64, struct{}, int64](Config{}, maxProg{})
	if _, err := e.Run(); err != ErrNoVertices {
		t.Fatalf("err=%v, want ErrNoVertices", err)
	}
}

func TestSetVerticesRejectsSparseIDs(t *testing.T) {
	e := NewEngine[int64, struct{}, int64](Config{}, maxProg{})
	vs := []Vertex[int64, struct{}]{{ID: 5}}
	if err := e.SetVertices(vs); err == nil {
		t.Fatal("sparse IDs accepted")
	}
}

// stepCounter runs a fixed number of supersteps using master halting.
type stepCounter struct{ stopAfter int }

func (p *stepCounter) Compute(ctx *Context[int64, struct{}, int64], v *Vertex[int64, struct{}], msgs []int64) {
	v.Value++
	for _, e := range v.Edges {
		ctx.SendTo(e.To, 1)
	}
}

func (p *stepCounter) MasterCompute(m *Master) {
	if m.Superstep() == p.stopAfter-1 {
		m.Halt()
	}
}

func TestMasterHalt(t *testing.T) {
	g := graph.New(4, false)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	e := NewEngine[int64, struct{}, int64](Config{NumWorkers: 2}, &stepCounter{stopAfter: 7})
	if err := e.SetVertices(buildVertices(g, func(VertexID) int64 { return 0 })); err != nil {
		t.Fatal(err)
	}
	steps, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if steps != 7 {
		t.Fatalf("ran %d supersteps, want 7", steps)
	}
	for _, v := range e.Vertices() {
		if v.Value != 7 {
			t.Fatalf("vertex computed %d times, want 7", v.Value)
		}
	}
}

func TestMaxSuperstepsBound(t *testing.T) {
	g := graph.New(2, false)
	g.AddEdge(0, 1)
	e := NewEngine[int64, struct{}, int64](Config{NumWorkers: 1, MaxSupersteps: 3}, &stepCounter{stopAfter: 1 << 30})
	if err := e.SetVertices(buildVertices(g, func(VertexID) int64 { return 0 })); err != nil {
		t.Fatal(err)
	}
	steps, _ := e.Run()
	if steps != 3 {
		t.Fatalf("ran %d, want 3 (MaxSupersteps)", steps)
	}
}

// aggProg exercises sum/min/max and persistent aggregators.
type aggProg struct{}

func (aggProg) Compute(ctx *Context[int64, struct{}, int64], v *Vertex[int64, struct{}], msgs []int64) {
	ctx.Aggregate("sum", 0, 1)
	ctx.Aggregate("min", 0, float64(v.ID))
	ctx.Aggregate("max", 0, float64(v.ID))
	ctx.Aggregate("persist", 0, 1)
	if ctx.Superstep() == 2 {
		v.halted = true
	}
}

func TestAggregators(t *testing.T) {
	g := graph.New(10, false)
	e := NewEngine[int64, struct{}, int64](Config{NumWorkers: 3}, aggProg{})
	e.RegisterAggregator("sum", AggSum, 1, false)
	e.RegisterAggregator("min", AggMin, 1, false)
	e.RegisterAggregator("max", AggMax, 1, false)
	e.RegisterAggregator("persist", AggSum, 1, true)
	if err := e.SetVertices(buildVertices(g, func(VertexID) int64 { return 0 })); err != nil {
		t.Fatal(err)
	}
	steps, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if steps != 3 {
		t.Fatalf("steps=%d, want 3", steps)
	}
	if got := e.AggregatedValue("sum")[0]; got != 10 {
		t.Fatalf("sum=%v, want 10 (last superstep)", got)
	}
	if got := e.AggregatedValue("min")[0]; got != 0 {
		t.Fatalf("min=%v, want 0", got)
	}
	if got := e.AggregatedValue("max")[0]; got != 9 {
		t.Fatalf("max=%v, want 9", got)
	}
	if got := e.AggregatedValue("persist")[0]; got != 30 {
		t.Fatalf("persist=%v, want 30 (10 vertices × 3 supersteps)", got)
	}
}

func TestRegisterAggregatorValidation(t *testing.T) {
	e := NewEngine[int64, struct{}, int64](Config{}, aggProg{})
	e.RegisterAggregator("a", AggSum, 1, false)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate aggregator accepted")
			}
		}()
		e.RegisterAggregator("a", AggSum, 1, false)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("persistent min accepted")
			}
		}()
		e.RegisterAggregator("b", AggMin, 1, true)
	}()
}

// combinerProg sums incoming messages into the vertex value.
type combinerProg struct{}

func (combinerProg) Compute(ctx *Context[int64, struct{}, int64], v *Vertex[int64, struct{}], msgs []int64) {
	if ctx.Superstep() == 0 {
		for _, e := range v.Edges {
			ctx.SendTo(e.To, 2)
		}
		return
	}
	if len(msgs) > 1 {
		// With a sum combiner installed, at most one message may arrive.
		v.Value = -1
	} else {
		for _, m := range msgs {
			v.Value += m
		}
	}
	v.halted = true
}

func TestCombiner(t *testing.T) {
	// Star: all leaves send to center; combiner must merge into one message.
	g := graph.New(6, true)
	for i := 1; i < 6; i++ {
		g.AddEdge(VertexID(i), 0)
	}
	e := NewEngine[int64, struct{}, int64](Config{NumWorkers: 3}, combinerProg{})
	e.SetCombiner(func(a, b int64) int64 { return a + b })
	if err := e.SetVertices(buildVertices(g, func(VertexID) int64 { return 0 })); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Vertices()[0].Value; got != 10 {
		t.Fatalf("combined value=%d, want 10 (5 leaves × 2)", got)
	}
}

// workerStateProg verifies per-worker shared state identity.
type workerStateProg struct{}

type wsCounter struct{ n int }

func (workerStateProg) InitWorker(workerID, numWorkers int) any { return &wsCounter{} }

func (workerStateProg) Compute(ctx *Context[int64, struct{}, int64], v *Vertex[int64, struct{}], msgs []int64) {
	ws := ctx.WorkerState().(*wsCounter)
	ws.n++
	v.Value = int64(ws.n) // order within a worker is deterministic
	v.halted = true
}

func TestWorkerState(t *testing.T) {
	g := graph.New(8, false)
	e := NewEngine[int64, struct{}, int64](Config{NumWorkers: 2}, workerStateProg{})
	if err := e.SetVertices(buildVertices(g, func(VertexID) int64 { return 0 })); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Default placement is contiguous: worker 0 gets 0..3, worker 1 gets 4..7.
	// Within each worker the shared counter increments 1..4.
	for i, v := range e.Vertices() {
		want := int64(i%4 + 1)
		if v.Value != want {
			t.Fatalf("vertex %d saw counter %d, want %d", i, v.Value, want)
		}
	}
}

func TestPlacementCustom(t *testing.T) {
	g := graph.New(10, false)
	e := NewEngine[int64, struct{}, int64](Config{
		NumWorkers: 2,
		Placement:  func(v VertexID) int { return int(v) % 2 },
	}, workerStateProg{})
	if err := e.SetVertices(buildVertices(g, func(VertexID) int64 { return 0 })); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.WorkerOf(3) != 1 || e.WorkerOf(4) != 0 {
		t.Fatal("custom placement not respected")
	}
}

func TestStatsAccounting(t *testing.T) {
	// Two vertices on different workers exchanging one message each way.
	g := graph.New(2, false)
	g.AddEdge(0, 1)
	e := NewEngine[int64, struct{}, int64](Config{NumWorkers: 2, MaxSupersteps: 2}, &stepCounter{stopAfter: 2})
	if err := e.SetVertices(buildVertices(g, func(VertexID) int64 { return 0 })); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if len(st) != 2 {
		t.Fatalf("stats for %d supersteps, want 2", len(st))
	}
	if st[0].Active != 2 {
		t.Fatalf("superstep 0 active=%d, want 2", st[0].Active)
	}
	// Each vertex sends one remote message (vertices on different workers).
	var rem int64
	for _, r := range st[0].SentRemote {
		rem += r
	}
	if rem != 2 {
		t.Fatalf("remote msgs=%d, want 2", rem)
	}
	if st[0].TotalSent() != 2 {
		t.Fatalf("total sent=%d, want 2", st[0].TotalSent())
	}
	var recv int64
	for _, r := range st[1].Received {
		recv += r
	}
	if recv != 2 {
		t.Fatalf("received=%d, want 2", recv)
	}
}

func TestLocalVsRemoteAccounting(t *testing.T) {
	// Both vertices on one worker → messages are local.
	g := graph.New(2, false)
	g.AddEdge(0, 1)
	e := NewEngine[int64, struct{}, int64](Config{NumWorkers: 1, MaxSupersteps: 1}, &stepCounter{stopAfter: 1})
	if err := e.SetVertices(buildVertices(g, func(VertexID) int64 { return 0 })); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()[0]
	if st.SentLocal[0] != 2 || st.SentRemote[0] != 0 {
		t.Fatalf("local=%d remote=%d, want 2/0", st.SentLocal[0], st.SentRemote[0])
	}
}

// Determinism: identical seeds and worker counts produce identical results.
func TestEngineDeterminism(t *testing.T) {
	run := func() []int64 {
		g := gen.WattsStrogatz(300, 4, 0.3, 2)
		und := graph.New(300, false)
		g.Edges(func(u, v VertexID) { und.AddEdge(u, v) })
		e := NewEngine[int64, struct{}, int64](Config{NumWorkers: 4, Seed: 9}, maxProg{})
		if err := e.SetVertices(buildVertices(und, func(v VertexID) int64 { return int64(v * 7 % 301) })); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		out := make([]int64, 300)
		for i, v := range e.Vertices() {
			out[i] = v.Value
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at vertex %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Result invariance across worker counts for a worker-independent program.
func TestWorkerCountInvariance(t *testing.T) {
	run := func(workers int) []int64 {
		g := gen.WattsStrogatz(200, 4, 0.3, 3)
		und := graph.New(200, false)
		g.Edges(func(u, v VertexID) { und.AddEdge(u, v) })
		e := NewEngine[int64, struct{}, int64](Config{NumWorkers: workers, Seed: 5}, maxProg{})
		if err := e.SetVertices(buildVertices(und, func(v VertexID) int64 { return int64(v) })); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		out := make([]int64, 200)
		for i, v := range e.Vertices() {
			out[i] = v.Value
		}
		return out
	}
	a, b := run(1), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("worker-count dependent result at vertex %d", i)
		}
	}
}

// Edge mutation: vertices may add edges to themselves during compute
// (Spinner's NeighborDiscovery does exactly this).
type edgeAdder struct{}

func (edgeAdder) Compute(ctx *Context[int64, int64, int64], v *Vertex[int64, int64], msgs []int64) {
	if ctx.Superstep() == 0 {
		for _, e := range v.Edges {
			ctx.SendTo(e.To, int64(v.ID))
		}
		return
	}
	for _, src := range msgs {
		found := false
		for _, e := range v.Edges {
			if e.To == VertexID(src) {
				found = true
			}
		}
		if !found {
			v.Edges = append(v.Edges, Edge[int64]{To: VertexID(src), Value: 1})
		}
	}
	v.halted = true
}

func TestEdgeMutation(t *testing.T) {
	g := graph.New(3, true)
	g.AddEdge(0, 1) // one-way: vertex 1 should discover reverse edge to 0
	vs := make([]Vertex[int64, int64], 3)
	for i := range vs {
		vs[i].ID = VertexID(i)
		for _, to := range g.Neighbors(VertexID(i)) {
			vs[i].Edges = append(vs[i].Edges, Edge[int64]{To: to})
		}
	}
	e := NewEngine[int64, int64, int64](Config{NumWorkers: 2}, edgeAdder{})
	if err := e.SetVertices(vs); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	v1 := e.Vertices()[1]
	if len(v1.Edges) != 1 || v1.Edges[0].To != 0 {
		t.Fatalf("vertex 1 edges=%v, want reverse edge to 0", v1.Edges)
	}
}

func TestAggregatedVectorCopy(t *testing.T) {
	e := NewEngine[int64, struct{}, int64](Config{NumWorkers: 1}, aggProg{})
	e.RegisterAggregator("sum", AggSum, 3, false)
	e.RegisterAggregator("min", AggMin, 1, false)
	e.RegisterAggregator("max", AggMax, 1, false)
	e.RegisterAggregator("persist", AggSum, 1, true)
	g := graph.New(2, false)
	if err := e.SetVertices(buildVertices(g, func(VertexID) int64 { return 0 })); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	v := e.AggregatedValue("sum")
	v[0] = 999
	if e.AggregatedValue("sum")[0] == 999 {
		t.Fatal("AggregatedValue returned live slice")
	}
}
