package pregel

import (
	"testing"

	"repro/internal/graph"
)

// TestSuperstepAllocationBudget pins the zero-allocation message plane:
// once the arenas have grown, a superstep may allocate only the stats
// record and the worker goroutines. The budget is deliberately loose
// enough to absorb goroutine and stats noise but far below the old
// engine's O(n)-allocations-per-superstep behavior.
func TestSuperstepAllocationBudget(t *testing.T) {
	g := graph.New(64, false)
	for i := 0; i < 63; i++ {
		g.AddEdge(VertexID(i), VertexID(i+1))
	}
	const steps = 100
	avg := testing.AllocsPerRun(3, func() {
		e := NewEngine[int64, struct{}, int64](Config{NumWorkers: 2, MaxSupersteps: steps}, &stepCounter{stopAfter: 1 << 30})
		if err := e.SetVertices(buildVertices(g, func(VertexID) int64 { return 0 })); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	perStep := avg / steps
	if perStep > 25 {
		t.Fatalf("superstep loop averaged %.1f allocs/superstep (budget 25); message plane is allocating per superstep", perStep)
	}
}

// TestCombinerAllocationBudget is the same budget on the send-side
// combining path: every vertex sends to every neighbor each superstep and
// a sum combiner is installed, so all traffic flows through the staging
// slots.
func TestCombinerAllocationBudget(t *testing.T) {
	g := graph.New(64, false)
	for i := 0; i < 64; i++ {
		g.AddEdge(VertexID(i), VertexID((i+1)%64))
		g.AddEdge(VertexID(i), VertexID((i+7)%64))
	}
	const steps = 100
	avg := testing.AllocsPerRun(3, func() {
		e := NewEngine[int64, struct{}, int64](Config{NumWorkers: 2, MaxSupersteps: steps}, &stepCounter{stopAfter: 1 << 30})
		e.SetCombiner(func(a, b int64) int64 { return a + b })
		if err := e.SetVertices(buildVertices(g, func(VertexID) int64 { return 0 })); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	perStep := avg / steps
	if perStep > 25 {
		t.Fatalf("combiner loop averaged %.1f allocs/superstep (budget 25)", perStep)
	}
}

// TestStatsDeterministicAcrossRuns verifies that the per-superstep message
// accounting — not just the converged values — is bit-identical across
// repeated runs, at both 1 and 4 workers.
func TestStatsDeterministicAcrossRuns(t *testing.T) {
	run := func(workers int) []SuperstepStats {
		g := graph.New(200, false)
		for i := 0; i < 199; i++ {
			g.AddEdge(VertexID(i), VertexID(i+1))
			g.AddEdge(VertexID(i), VertexID((i*13+5)%200))
		}
		e := NewEngine[int64, struct{}, int64](Config{NumWorkers: workers, Seed: 11}, &stepCounter{stopAfter: 6})
		if err := e.SetVertices(buildVertices(g, func(VertexID) int64 { return 0 })); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Stats()
	}
	for _, workers := range []int{1, 4} {
		a, b := run(workers), run(workers)
		if len(a) != len(b) {
			t.Fatalf("workers=%d: %d vs %d supersteps", workers, len(a), len(b))
		}
		for s := range a {
			if a[s].Active != b[s].Active {
				t.Fatalf("workers=%d superstep %d: active %d vs %d", workers, s, a[s].Active, b[s].Active)
			}
			for wk := range a[s].SentLocal {
				if a[s].SentLocal[wk] != b[s].SentLocal[wk] ||
					a[s].SentRemote[wk] != b[s].SentRemote[wk] ||
					a[s].Received[wk] != b[s].Received[wk] ||
					a[s].ReceivedRemote[wk] != b[s].ReceivedRemote[wk] {
					t.Fatalf("workers=%d superstep %d worker %d: message counts differ between runs", workers, s, wk)
				}
			}
		}
	}
}

// TestSendSideCombiningReducesTraffic pins the combining semantics: on a
// star with all leaves on few workers, the physical message counts must
// reflect post-combining traffic (at most one message per worker per
// destination) while the combined value is preserved.
func TestSendSideCombiningReducesTraffic(t *testing.T) {
	// 9 leaves send value 2 to the center; 2 workers → at most 2 staged
	// messages reach vertex 0 instead of 9.
	g := graph.New(10, true)
	for i := 1; i < 10; i++ {
		g.AddEdge(VertexID(i), 0)
	}
	e := NewEngine[int64, struct{}, int64](Config{NumWorkers: 2}, combinerProg{})
	e.SetCombiner(func(a, b int64) int64 { return a + b })
	if err := e.SetVertices(buildVertices(g, func(VertexID) int64 { return 0 })); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Vertices()[0].Value; got != 18 {
		t.Fatalf("combined value=%d, want 18 (9 leaves × 2)", got)
	}
	// Received is recorded in the superstep whose barrier delivered the
	// messages — the same index as the sends (see TestStatsAccounting).
	st := e.Stats()
	var sent, recv int64
	for wk := range st[0].SentLocal {
		sent += st[0].SentLocal[wk] + st[0].SentRemote[wk]
		recv += st[0].Received[wk]
	}
	if sent != recv {
		t.Fatalf("sent=%d != received=%d", sent, recv)
	}
	if sent > 2 {
		t.Fatalf("sent=%d physical messages, want ≤ 2 (send-side combining must collapse per-worker traffic)", sent)
	}
}
