package pregel

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Checkpointing implements Pregel's fault-tolerance mechanism (Malewicz et
// al., §4.2): at user-chosen superstep boundaries the engine persists the
// vertex values, edges, halted flags, pending messages and aggregator
// state. After a failure, a fresh engine Restores the checkpoint and
// continues from the superstep that follows it, producing results
// identical to an uninterrupted run (verified by the failure-injection
// tests).
//
// The snapshot uses encoding/gob, so V, E and M must be gob-encodable
// (exported fields or primitive types). Spinner's internal types are
// unexported; checkpointing is exercised by the analytics apps whose
// states are primitives.

// checkpointData is the on-disk layout.
type checkpointData[V, E, M any] struct {
	Superstep int
	Vertices  []checkpointVertex[V, E]
	Inbox     [][]M
	Aggs      map[string]checkpointAgg
}

type checkpointVertex[V, E any] struct {
	Value  V
	Edges  []Edge[E]
	Halted bool
}

type checkpointAgg struct {
	Current []float64
}

// Checkpoint writes the engine's complete state after the most recent
// superstep. It must be called between supersteps — in practice from
// MasterCompute or after Run returns.
func (e *Engine[V, E, M]) Checkpoint(w io.Writer) error {
	data := checkpointData[V, E, M]{
		Superstep: e.superstep,
		Vertices:  make([]checkpointVertex[V, E], len(e.vertices)),
		Inbox:     e.inbox,
		Aggs:      map[string]checkpointAgg{},
	}
	for i := range e.vertices {
		data.Vertices[i] = checkpointVertex[V, E]{
			Value:  e.vertices[i].Value,
			Edges:  e.vertices[i].Edges,
			Halted: e.vertices[i].halted,
		}
	}
	for name, a := range e.aggs {
		data.Aggs[name] = checkpointAgg{Current: a.current}
	}
	if err := gob.NewEncoder(w).Encode(&data); err != nil {
		return fmt.Errorf("pregel: encoding checkpoint: %w", err)
	}
	return nil
}

// Restore loads a checkpoint into a freshly constructed engine. The engine
// must have the same configuration (worker count, placement, seed),
// program and registered aggregators as the checkpointed one; mismatches
// in aggregator names or vertex counts are rejected. ResumeRun continues
// the computation.
func (e *Engine[V, E, M]) Restore(r io.Reader) error {
	var data checkpointData[V, E, M]
	if err := gob.NewDecoder(r).Decode(&data); err != nil {
		return fmt.Errorf("pregel: decoding checkpoint: %w", err)
	}
	if len(e.aggs) != len(data.Aggs) {
		return fmt.Errorf("pregel: checkpoint has %d aggregators, engine has %d", len(data.Aggs), len(e.aggs))
	}
	for name, ca := range data.Aggs {
		a, ok := e.aggs[name]
		if !ok {
			return fmt.Errorf("pregel: checkpoint aggregator %q not registered", name)
		}
		if len(ca.Current) != a.size {
			return fmt.Errorf("pregel: checkpoint aggregator %q size %d != %d", name, len(ca.Current), a.size)
		}
	}
	vs := make([]Vertex[V, E], len(data.Vertices))
	for i, cv := range data.Vertices {
		vs[i] = Vertex[V, E]{ID: VertexID(i), Value: cv.Value, Edges: cv.Edges, halted: cv.Halted}
	}
	e.vertices = vs
	e.restoredInbox = data.Inbox
	e.restoredStep = data.Superstep + 1
	for name, ca := range data.Aggs {
		copy(e.aggs[name].current, ca.Current)
	}
	return nil
}

// ResumeRun continues a restored computation from the checkpointed
// superstep. Calling it on an engine without a restored checkpoint is an
// error; use Run for fresh computations.
func (e *Engine[V, E, M]) ResumeRun() (int, error) {
	if e.restoredStep == 0 {
		return 0, fmt.Errorf("pregel: ResumeRun without a restored checkpoint")
	}
	if len(e.vertices) == 0 {
		return 0, ErrNoVertices
	}
	e.initPlacement()
	e.initWorkers()
	// Reinstall checkpointed aggregator values: initWorkers reset partials
	// but current values were loaded by Restore and must survive.
	e.inbox = e.restoredInbox
	if e.inbox == nil {
		e.inbox = make([][]M, len(e.vertices))
	}
	// initMessagePlane's seeding scan rebuilds the pending lists and the
	// active count from the restored halted flags and inboxes.
	e.initMessagePlane()
	start := e.restoredStep
	e.restoredStep = 0
	for e.superstep = start; e.superstep < e.cfg.MaxSupersteps; e.superstep++ {
		if e.active == 0 {
			return e.superstep, nil
		}
		e.runSuperstep()
		if mp, ok := e.prog.(MasterProgram); ok {
			m := &Master{aggs: e.aggs, numVertices: len(e.vertices), superstep: e.superstep}
			mp.MasterCompute(m)
			if m.halted {
				return e.superstep + 1, nil
			}
		}
	}
	return e.superstep, nil
}
