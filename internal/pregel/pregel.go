// Package pregel is a from-scratch, in-process implementation of the
// Pregel/Giraph bulk-synchronous graph-processing model (Malewicz et al.,
// SIGMOD 2010) that the Spinner paper builds on. It provides everything the
// paper's Giraph implementation relies on:
//
//   - supersteps with synchronous message delivery (messages sent during
//     superstep s are visible at superstep s+1);
//   - a vertex-centric Compute function with vote-to-halt semantics and
//     reactivation on message receipt;
//   - edge mutation by the owning vertex (Spinner's NeighborDiscovery step
//     creates reverse edges);
//   - sharded aggregators: commutative/associative reductions accumulated
//     per worker and merged at the barrier, with optional persistence
//     across supersteps (Giraph's persistent aggregators, which Spinner
//     uses for the partition-load counters b(l));
//   - a master-compute hook that runs between supersteps, reads and writes
//     aggregators, and can halt the computation (Spinner's halting
//     heuristic and migration-probability computation live there);
//   - per-worker shared state, the feature §IV-A4 uses to emulate
//     asynchronous computation within a worker;
//   - per-superstep accounting of local vs. remote messages per worker,
//     which the cluster cost model turns into simulated wall-clock time.
//
// Workers are goroutines; vertex placement is controlled by a pluggable
// placement function so experiments can compare hash placement against
// Spinner-derived placement exactly as §V-F does.
//
// # Message-plane architecture
//
// The superstep hot path is allocation-free in steady state. All message
// buffers are engine-owned arenas created once per Run and truncated —
// never reallocated — between supersteps:
//
//   - Each worker keeps one reusable Context whose per-destination-worker
//     outboxes retain their capacity across supersteps.
//   - Per-vertex inboxes are truncated in place when consumed; the engine
//     tracks which vertices hold pending messages in per-worker lists, so
//     both the clear and the re-fill are O(messages delivered), not O(n).
//   - When a Combiner is installed, SendTo combines on the send side: each
//     worker stages at most one merged payload per destination vertex
//     (epoch-stamped slots, no clearing pass), and delivery moves one
//     message per (source worker, destination) pair. Combiners must be
//     commutative and associative, as in Giraph; SentLocal/SentRemote and
//     Received then count post-combining traffic, which is what would
//     cross the wire. Without a combiner every message is queued and
//     delivered individually, uncombined.
//   - Vote-to-halt bookkeeping is incremental: workers count vertices that
//     stay active at compute time and vertices they reactivate at delivery
//     time, so the engine never rescans the vertex set to decide whether
//     to run another superstep.
//   - Aggregator merging reuses per-aggregator scratch vectors and runs
//     the independent aggregators in parallel at the barrier.
package pregel

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/graph"
	"repro/internal/rng"
)

// VertexID aliases the graph package's vertex identifier.
type VertexID = graph.VertexID

// Edge is an outgoing edge with a mutable per-edge value (Giraph edge
// value). Spinner stores the neighbor's last-known label and the edge
// weight in E.
type Edge[E any] struct {
	To    VertexID
	Value E
}

// Vertex is the unit of computation. The Value and Edges fields may be
// mutated freely by the owning vertex during Compute.
type Vertex[V, E any] struct {
	ID     VertexID
	Value  V
	Edges  []Edge[E]
	halted bool
}

// Halted reports whether the vertex has voted to halt and received no
// message since.
func (v *Vertex[V, E]) Halted() bool { return v.halted }

// VoteToHalt marks the vertex inactive; it is reactivated when a message
// arrives (standard Pregel semantics).
func (v *Vertex[V, E]) VoteToHalt() { v.halted = true }

// Program is the user computation. Compute is invoked for every active
// vertex every superstep; msgs holds the messages delivered this superstep
// (nil if none). Implementations may retain no references to msgs after
// returning.
type Program[V, E, M any] interface {
	Compute(ctx *Context[V, E, M], v *Vertex[V, E], msgs []M)
}

// MasterProgram is implemented by programs that need a master computation
// between supersteps (Giraph's MasterCompute). It runs single-threaded
// after the barrier of every superstep, seeing that superstep's merged
// aggregator values.
type MasterProgram interface {
	MasterCompute(m *Master)
}

// WorkerInitializer is implemented by programs that keep per-worker shared
// state (§IV-A4). InitWorker is called once per worker before superstep 0;
// the returned value is available to Compute via Context.WorkerState.
type WorkerInitializer interface {
	InitWorker(workerID, numWorkers int) any
}

// Combiner optionally merges messages addressed to the same vertex
// (Giraph's message combiner). Used by SSSP (min) and PageRank (sum).
// Combiners must be commutative and associative: with one installed the
// engine combines on the send side, per worker, and merges the per-worker
// results in worker order at delivery.
type Combiner[M any] func(a, b M) M

// Config configures an Engine.
type Config struct {
	// NumWorkers is the number of parallel workers (goroutines). Defaults
	// to GOMAXPROCS.
	NumWorkers int
	// Placement maps a vertex to a worker in [0, NumWorkers). Defaults to
	// contiguous ranges. Experiments on partitioning-aware placement
	// (Fig. 9 / Table IV) supply label-based placements here.
	Placement func(VertexID) int
	// Seed seeds the per-worker deterministic random streams.
	Seed uint64
	// MaxSupersteps bounds the run; 0 means 10_000.
	MaxSupersteps int
	// AfterSuperstep, when non-nil, is invoked single-threaded after each
	// superstep's barrier and master computation with the 0-based index of
	// the superstep just executed — including the final one when the master
	// halts. The callback may read engine state (Vertices, Stats,
	// AggregatedValue) to extract a consistent mid-run snapshot; it must
	// not mutate vertices or send messages. The serving layer uses this to
	// publish progressively better labelings while a long restabilization
	// run is still converging.
	AfterSuperstep func(superstep int)
}

type aggOp int

// Aggregator reduction operators.
const (
	AggSum aggOp = iota
	AggMin
	AggMax
)

type aggregator struct {
	op         aggOp
	size       int
	persistent bool
	current    []float64   // readable value (previous superstep's merge)
	partials   [][]float64 // one accumulator per worker
	scratch    []float64   // reusable merge buffer (barrier only)
}

func (a *aggregator) resetPartials() {
	for w := range a.partials {
		p := a.partials[w]
		for i := range p {
			switch a.op {
			case AggSum:
				p[i] = 0
			case AggMin:
				p[i] = inf
			case AggMax:
				p[i] = -inf
			}
		}
	}
}

const inf = 1e308

// SuperstepStats records one superstep's accounting, per worker, for the
// cluster cost model and the scalability figures.
type SuperstepStats struct {
	Superstep      int
	Active         int64
	SentLocal      []int64 // per source worker
	SentRemote     []int64 // per source worker
	Received       []int64 // per destination worker (all sources)
	ReceivedRemote []int64 // per destination worker, cross-worker only
	ComputeEdges   []int64 // per worker: edges scanned (proxy for compute)
	Duration       time.Duration
}

// TotalSent returns the total number of messages sent in the superstep.
func (s *SuperstepStats) TotalSent() int64 {
	var t int64
	for i := range s.SentLocal {
		t += s.SentLocal[i] + s.SentRemote[i]
	}
	return t
}

// Engine executes a Program over a vertex set with BSP semantics.
type Engine[V, E, M any] struct {
	cfg      Config
	prog     Program[V, E, M]
	combiner Combiner[M]

	vertices []Vertex[V, E] // indexed by VertexID
	place    []int32        // vertex -> worker
	byWorker [][]VertexID   // worker -> owned vertices (deterministic order)

	inbox      [][]M               // vertex -> pending messages (delivered next superstep)
	inboxArena [][]M               // worker -> flat reusable message storage backing its inboxes
	inboxCount []int32             // vertex -> messages delivered this superstep (zeroed after use)
	pending    [][]VertexID        // worker -> owned vertices with non-empty inboxes
	ctxs       []*Context[V, E, M] // reusable per-worker contexts (outbox arenas)
	active     int64               // incremental active count for the next superstep

	aggs     map[string]*aggregator
	aggOrder []string

	workerState []any
	workerRand  []*rng.Source

	superstep int
	stats     []SuperstepStats

	// Checkpoint restore state (see checkpoint.go).
	restoredInbox [][]M
	restoredStep  int
}

// NewEngine builds an engine over the given program.
func NewEngine[V, E, M any](cfg Config, prog Program[V, E, M]) *Engine[V, E, M] {
	if cfg.NumWorkers <= 0 {
		cfg.NumWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = 10000
	}
	return &Engine[V, E, M]{cfg: cfg, prog: prog, aggs: map[string]*aggregator{}}
}

// SetCombiner installs a message combiner.
func (e *Engine[V, E, M]) SetCombiner(c Combiner[M]) { e.combiner = c }

// RegisterAggregator declares a named aggregator holding a vector of size
// values reduced with op. Persistent aggregators carry their value across
// supersteps, merging each superstep's contributions into it (sum op only);
// non-persistent aggregators are reset every superstep.
func (e *Engine[V, E, M]) RegisterAggregator(name string, op aggOp, size int, persistent bool) {
	if _, dup := e.aggs[name]; dup {
		panic(fmt.Sprintf("pregel: duplicate aggregator %q", name))
	}
	if persistent && op != AggSum {
		panic("pregel: persistent aggregators must use AggSum")
	}
	a := &aggregator{op: op, size: size, persistent: persistent}
	a.current = make([]float64, size)
	if op == AggMin {
		for i := range a.current {
			a.current[i] = inf
		}
	}
	if op == AggMax {
		for i := range a.current {
			a.current[i] = -inf
		}
	}
	e.aggs[name] = a
	e.aggOrder = append(e.aggOrder, name)
}

// SetVertices loads the vertex set. Vertex IDs must equal slice indices.
// Must be called before Run.
func (e *Engine[V, E, M]) SetVertices(vs []Vertex[V, E]) error {
	for i := range vs {
		if vs[i].ID != VertexID(i) {
			return fmt.Errorf("pregel: vertex at index %d has ID %d; IDs must be dense", i, vs[i].ID)
		}
	}
	e.vertices = vs
	return nil
}

// NumVertices returns the number of loaded vertices.
func (e *Engine[V, E, M]) NumVertices() int { return len(e.vertices) }

// NumWorkers returns the configured worker count.
func (e *Engine[V, E, M]) NumWorkers() int { return e.cfg.NumWorkers }

// Vertices exposes the vertex slice after a run (read-only by convention).
func (e *Engine[V, E, M]) Vertices() []Vertex[V, E] { return e.vertices }

// Stats returns per-superstep accounting collected during Run.
func (e *Engine[V, E, M]) Stats() []SuperstepStats { return e.stats }

// AggregatedValue returns the current merged value of the named aggregator
// (a copy).
func (e *Engine[V, E, M]) AggregatedValue(name string) []float64 {
	a, ok := e.aggs[name]
	if !ok {
		panic(fmt.Sprintf("pregel: unknown aggregator %q", name))
	}
	out := make([]float64, a.size)
	copy(out, a.current)
	return out
}

// WorkerOf returns the worker owning vertex v (valid after Run starts).
func (e *Engine[V, E, M]) WorkerOf(v VertexID) int { return int(e.place[v]) }

// ErrNoVertices is returned by Run when no vertex set was loaded.
var ErrNoVertices = errors.New("pregel: no vertices loaded")

// Run executes supersteps until every vertex has halted with no messages in
// flight, the master halts the computation, or MaxSupersteps is reached.
// It returns the number of supersteps executed.
func (e *Engine[V, E, M]) Run() (int, error) {
	if len(e.vertices) == 0 {
		return 0, ErrNoVertices
	}
	e.initPlacement()
	e.initWorkers()
	e.inbox = make([][]M, len(e.vertices))
	e.initMessagePlane()

	for e.superstep = 0; e.superstep < e.cfg.MaxSupersteps; e.superstep++ {
		if e.active == 0 && e.superstep > 0 {
			return e.superstep, nil
		}
		e.runSuperstep()
		halted := false
		if mp, ok := e.prog.(MasterProgram); ok {
			m := &Master{aggs: e.aggs, numVertices: len(e.vertices), superstep: e.superstep}
			mp.MasterCompute(m)
			halted = m.halted
		}
		if e.cfg.AfterSuperstep != nil {
			e.cfg.AfterSuperstep(e.superstep)
		}
		if halted {
			return e.superstep + 1, nil
		}
	}
	return e.superstep, nil
}

func (e *Engine[V, E, M]) initPlacement() {
	n := len(e.vertices)
	w := e.cfg.NumWorkers
	e.place = make([]int32, n)
	e.byWorker = make([][]VertexID, w)
	placeFn := e.cfg.Placement
	if placeFn == nil {
		chunk := (n + w - 1) / w
		placeFn = func(v VertexID) int { return int(v) / chunk }
	}
	for v := 0; v < n; v++ {
		wk := placeFn(VertexID(v))
		if wk < 0 || wk >= w {
			wk = ((wk % w) + w) % w
		}
		e.place[v] = int32(wk)
		e.byWorker[wk] = append(e.byWorker[wk], VertexID(v))
	}
}

func (e *Engine[V, E, M]) initWorkers() {
	w := e.cfg.NumWorkers
	e.workerState = make([]any, w)
	e.workerRand = make([]*rng.Source, w)
	master := rng.New(e.cfg.Seed)
	for i := 0; i < w; i++ {
		e.workerRand[i] = master.Split()
	}
	if wi, ok := e.prog.(WorkerInitializer); ok {
		for i := 0; i < w; i++ {
			e.workerState[i] = wi.InitWorker(i, w)
		}
	}
	for _, a := range e.aggs {
		a.partials = make([][]float64, w)
		for i := 0; i < w; i++ {
			a.partials[i] = make([]float64, a.size)
		}
		a.scratch = make([]float64, a.size)
		a.resetPartials()
	}
}

// initMessagePlane builds the reusable per-worker contexts and the pending
// lists, and seeds the incremental active count with one full scan (the
// only one the engine ever performs; the scan is non-trivial only when
// resuming from a checkpoint with restored halted flags and inboxes).
func (e *Engine[V, E, M]) initMessagePlane() {
	w := e.cfg.NumWorkers
	n := len(e.vertices)
	e.pending = make([][]VertexID, w)
	if e.combiner == nil {
		// The arena delivery path is only taken without a combiner; the
		// combiner path stages into per-context slots instead.
		e.inboxArena = make([][]M, w)
		e.inboxCount = make([]int32, n)
	}
	e.ctxs = make([]*Context[V, E, M], w)
	for wk := 0; wk < w; wk++ {
		ctx := &Context[V, E, M]{engine: e, workerID: wk, rand: e.workerRand[wk]}
		ctx.out = make([][]addrMsg[M], w)
		if e.combiner != nil {
			ctx.combVal = make([]M, n)
			ctx.combEpoch = make([]uint32, n)
			ctx.combDst = make([][]VertexID, w)
		}
		e.ctxs[wk] = ctx
	}
	e.active = 0
	for i := range e.vertices {
		if len(e.inbox[i]) > 0 {
			wk := e.place[i]
			e.pending[wk] = append(e.pending[wk], VertexID(i))
		}
		if !e.vertices[i].halted || len(e.inbox[i]) > 0 {
			e.active++
		}
	}
}
