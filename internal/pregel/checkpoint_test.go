package pregel

import (
	"bytes"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// ckptProg counts supersteps in each vertex and checkpoints via the master
// at a chosen superstep.
type ckptProg struct {
	stopAfter int
	ckptAt    int
	buf       *bytes.Buffer
	engine    *Engine[int64, struct{}, int64]
	ckptErr   error
}

func (p *ckptProg) Compute(ctx *Context[int64, struct{}, int64], v *Vertex[int64, struct{}], msgs []int64) {
	for _, m := range msgs {
		v.Value += m
	}
	for _, e := range v.Edges {
		ctx.SendTo(e.To, 1)
	}
	ctx.Aggregate("steps", 0, 1)
}

func (p *ckptProg) MasterCompute(m *Master) {
	if m.Superstep() == p.ckptAt && p.buf != nil {
		p.ckptErr = p.engine.Checkpoint(p.buf)
	}
	if m.Superstep() == p.stopAfter-1 {
		m.Halt()
	}
}

func buildCkptVertices(n int) []Vertex[int64, struct{}] {
	g := gen.WattsStrogatz(n, 4, 0.3, 11)
	und := graph.New(n, false)
	g.Edges(func(u, v VertexID) { und.AddEdge(u, v) })
	vs := make([]Vertex[int64, struct{}], n)
	for i := range vs {
		vs[i].ID = VertexID(i)
		for _, to := range und.Neighbors(VertexID(i)) {
			vs[i].Edges = append(vs[i].Edges, Edge[struct{}]{To: to})
		}
	}
	return vs
}

func TestCheckpointRestoreMatchesUninterrupted(t *testing.T) {
	const n, stopAfter, ckptAt = 200, 12, 5
	cfg := Config{NumWorkers: 3, Seed: 7}

	// Uninterrupted run.
	ref := &ckptProg{stopAfter: stopAfter}
	refEng := NewEngine[int64, struct{}, int64](cfg, ref)
	refEng.RegisterAggregator("steps", AggSum, 1, false)
	if err := refEng.SetVertices(buildCkptVertices(n)); err != nil {
		t.Fatal(err)
	}
	if _, err := refEng.Run(); err != nil {
		t.Fatal(err)
	}

	// Run that checkpoints at superstep ckptAt, then "fails".
	var buf bytes.Buffer
	first := &ckptProg{stopAfter: ckptAt + 1, ckptAt: ckptAt, buf: &buf}
	firstEng := NewEngine[int64, struct{}, int64](cfg, first)
	first.engine = firstEng
	firstEng.RegisterAggregator("steps", AggSum, 1, false)
	if err := firstEng.SetVertices(buildCkptVertices(n)); err != nil {
		t.Fatal(err)
	}
	if _, err := firstEng.Run(); err != nil {
		t.Fatal(err)
	}
	if first.ckptErr != nil {
		t.Fatal(first.ckptErr)
	}

	// Recovery: fresh engine, restore, resume to completion.
	rec := &ckptProg{stopAfter: stopAfter}
	recEng := NewEngine[int64, struct{}, int64](cfg, rec)
	rec.engine = recEng
	recEng.RegisterAggregator("steps", AggSum, 1, false)
	if err := recEng.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	steps, err := recEng.ResumeRun()
	if err != nil {
		t.Fatal(err)
	}
	if steps != stopAfter {
		t.Fatalf("resumed run ended at superstep %d, want %d", steps, stopAfter)
	}
	for i := range refEng.Vertices() {
		if refEng.Vertices()[i].Value != recEng.Vertices()[i].Value {
			t.Fatalf("vertex %d: recovered value %d != reference %d",
				i, recEng.Vertices()[i].Value, refEng.Vertices()[i].Value)
		}
	}
	if got, want := recEng.AggregatedValue("steps")[0], refEng.AggregatedValue("steps")[0]; got != want {
		t.Fatalf("aggregator after recovery %v != %v", got, want)
	}
}

func TestCheckpointAfterRun(t *testing.T) {
	// Checkpointing a finished run and restoring it preserves the values.
	prog := &ckptProg{stopAfter: 4}
	eng := NewEngine[int64, struct{}, int64](Config{NumWorkers: 2}, prog)
	eng.RegisterAggregator("steps", AggSum, 1, false)
	if err := eng.SetVertices(buildCkptVertices(50)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	eng2 := NewEngine[int64, struct{}, int64](Config{NumWorkers: 2}, prog)
	eng2.RegisterAggregator("steps", AggSum, 1, false)
	if err := eng2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	for i := range eng.Vertices() {
		if eng.Vertices()[i].Value != eng2.Vertices()[i].Value {
			t.Fatalf("vertex %d value mismatch after restore", i)
		}
	}
}

func TestRestoreValidation(t *testing.T) {
	prog := &ckptProg{stopAfter: 2}
	eng := NewEngine[int64, struct{}, int64](Config{NumWorkers: 1}, prog)
	eng.RegisterAggregator("steps", AggSum, 1, false)
	if err := eng.SetVertices(buildCkptVertices(20)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Missing aggregator registration.
	bad := NewEngine[int64, struct{}, int64](Config{NumWorkers: 1}, prog)
	if err := bad.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore into engine without aggregators accepted")
	}

	// Wrong aggregator size.
	bad2 := NewEngine[int64, struct{}, int64](Config{NumWorkers: 1}, prog)
	bad2.RegisterAggregator("steps", AggSum, 3, false)
	if err := bad2.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore with mismatched aggregator size accepted")
	}

	// Garbage input.
	bad3 := NewEngine[int64, struct{}, int64](Config{NumWorkers: 1}, prog)
	bad3.RegisterAggregator("steps", AggSum, 1, false)
	if err := bad3.Restore(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
}

func TestResumeWithoutRestore(t *testing.T) {
	eng := NewEngine[int64, struct{}, int64](Config{NumWorkers: 1}, &ckptProg{stopAfter: 2})
	if _, err := eng.ResumeRun(); err == nil {
		t.Fatal("ResumeRun without restore accepted")
	}
}
