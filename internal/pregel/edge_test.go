package pregel

import (
	"testing"

	"repro/internal/graph"
)

// selfSender sends a message to itself each superstep.
type selfSender struct{}

func (selfSender) Compute(ctx *Context[int64, struct{}, int64], v *Vertex[int64, struct{}], msgs []int64) {
	for _, m := range msgs {
		v.Value += m
	}
	if ctx.Superstep() < 3 {
		ctx.SendTo(v.ID, 1)
	}
	v.VoteToHalt()
}

func TestSelfMessages(t *testing.T) {
	e := NewEngine[int64, struct{}, int64](Config{NumWorkers: 2}, selfSender{})
	vs := make([]Vertex[int64, struct{}], 4)
	for i := range vs {
		vs[i].ID = VertexID(i)
	}
	if err := e.SetVertices(vs); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range e.Vertices() {
		if v.Value != 3 {
			t.Fatalf("vertex %d accumulated %d self-messages, want 3", i, v.Value)
		}
	}
	// Self-messages are local.
	for _, st := range e.Stats() {
		for wk := range st.SentRemote {
			if st.SentRemote[wk] != 0 {
				t.Fatal("self message counted as remote")
			}
		}
	}
}

func TestMoreWorkersThanVertices(t *testing.T) {
	e := NewEngine[int64, struct{}, int64](Config{NumWorkers: 16}, selfSender{})
	vs := make([]Vertex[int64, struct{}], 3)
	for i := range vs {
		vs[i].ID = VertexID(i)
	}
	if err := e.SetVertices(vs); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, v := range e.Vertices() {
		if v.Value != 3 {
			t.Fatal("wrong result with surplus workers")
		}
	}
}

func TestPlacementOutOfRangeNormalized(t *testing.T) {
	// A placement returning out-of-range workers must be wrapped, not
	// crash.
	e := NewEngine[int64, struct{}, int64](Config{
		NumWorkers: 2,
		Placement:  func(v VertexID) int { return int(v) - 100 },
	}, selfSender{})
	vs := make([]Vertex[int64, struct{}], 5)
	for i := range vs {
		vs[i].ID = VertexID(i)
	}
	if err := e.SetVertices(vs); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleVertexGraph(t *testing.T) {
	e := NewEngine[int64, struct{}, int64](Config{NumWorkers: 4}, selfSender{})
	if err := e.SetVertices([]Vertex[int64, struct{}]{{ID: 0}}); err != nil {
		t.Fatal(err)
	}
	steps, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if steps == 0 || e.Vertices()[0].Value != 3 {
		t.Fatalf("single vertex: steps=%d value=%d", steps, e.Vertices()[0].Value)
	}
}

// reactivator tests halted-vertex reactivation by incoming messages.
type reactivator struct{}

func (reactivator) Compute(ctx *Context[int64, struct{}, int64], v *Vertex[int64, struct{}], msgs []int64) {
	v.Value++
	if ctx.Superstep() == 0 && v.ID == 0 {
		// Vertex 0 pokes vertex 1 three supersteps from now... it can only
		// send for next superstep, so chain: poke 1, which pokes 2.
		ctx.SendTo(1, 1)
	}
	if len(msgs) > 0 && v.ID < VertexID(ctx.NumVertices()-1) {
		ctx.SendTo(v.ID+1, 1)
	}
	v.VoteToHalt()
}

func TestReactivation(t *testing.T) {
	e := NewEngine[int64, struct{}, int64](Config{NumWorkers: 2}, reactivator{})
	vs := make([]Vertex[int64, struct{}], 4)
	for i := range vs {
		vs[i].ID = VertexID(i)
	}
	if err := e.SetVertices(vs); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Everyone computes at superstep 0; then the poke chain wakes 1, 2, 3
	// one at a time.
	want := []int64{1, 2, 2, 2}
	for i, v := range e.Vertices() {
		if v.Value != want[i] {
			t.Fatalf("vertex %d computed %d times, want %d", i, v.Value, want[i])
		}
	}
}

// Property-style invariant: messages sent at superstep s equal messages
// received at superstep s+1.
func TestSentEqualsReceivedInvariant(t *testing.T) {
	g := graph.New(100, false)
	for i := 0; i < 99; i++ {
		g.AddEdge(VertexID(i), VertexID(i+1))
	}
	e := NewEngine[int64, struct{}, int64](Config{NumWorkers: 3}, &stepCounter{stopAfter: 5})
	if err := e.SetVertices(buildVertices(g, func(VertexID) int64 { return 0 })); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	for s := 0; s+1 < len(st); s++ {
		var sent, recv, recvRemote, sentRemote int64
		for wk := range st[s].SentLocal {
			sent += st[s].SentLocal[wk] + st[s].SentRemote[wk]
			sentRemote += st[s].SentRemote[wk]
		}
		for wk := range st[s+1].Received {
			recv += st[s+1].Received[wk]
			recvRemote += st[s+1].ReceivedRemote[wk]
		}
		if sent != recv {
			t.Fatalf("superstep %d: sent %d != received %d", s, sent, recv)
		}
		if sentRemote != recvRemote {
			t.Fatalf("superstep %d: sent remote %d != received remote %d", s, sentRemote, recvRemote)
		}
	}
}
