package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

func testMutation(i int) *graph.Mutation {
	m := &graph.Mutation{NewVertices: i % 3}
	for e := 0; e <= i%4; e++ {
		m.NewEdges = append(m.NewEdges, graph.WeightedEdgeRecord{
			U: graph.VertexID(i + e), V: graph.VertexID(2*i + e + 1), Weight: int32(1 + e)})
	}
	if i%5 == 0 {
		m.RemovedEdges = append(m.RemovedEdges, graph.Edge{From: graph.VertexID(i), To: graph.VertexID(i + 7)})
	}
	return m
}

func mutationsEqual(a, b *graph.Mutation) bool {
	if a.NewVertices != b.NewVertices || len(a.NewEdges) != len(b.NewEdges) || len(a.RemovedEdges) != len(b.RemovedEdges) {
		return false
	}
	for i := range a.NewEdges {
		if a.NewEdges[i] != b.NewEdges[i] {
			return false
		}
	}
	for i := range a.RemovedEdges {
		if a.RemovedEdges[i] != b.RemovedEdges[i] {
			return false
		}
	}
	return true
}

// Append N records across several segments, replay, and require exact
// round-tripping in order with contiguous sequence numbers.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, 1, Options{SegmentBytes: 256}) // force rotations
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	want := make([]*graph.Mutation, 0, n)
	for i := 0; i < n; i++ {
		if i%9 == 8 {
			if _, _, err := j.AppendResize(4 + i); err != nil {
				t.Fatal(err)
			}
			want = append(want, nil)
			continue
		}
		m := testMutation(i)
		seq, frameLen, err := j.AppendMutation(m)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(len(want)+1) {
			t.Fatalf("seq %d, want %d", seq, len(want)+1)
		}
		if frameLen <= 0 {
			t.Fatalf("frame length %d", frameLen)
		}
		want = append(want, m)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("only %d segments; rotation never fired", len(segs))
	}

	var got []Record
	next, err := Replay(dir, 0, func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if next != n+1 {
		t.Fatalf("next seq %d, want %d", next, n+1)
	}
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if want[i] == nil {
			if r.Type != RecordResize || r.NewK != 4+i {
				t.Fatalf("record %d: %+v, want resize to %d", i, r, 4+i)
			}
		} else if r.Type != RecordMutation || !mutationsEqual(r.Mut, want[i]) {
			t.Fatalf("record %d round-trip mismatch: %+v vs %+v", i, r.Mut, want[i])
		}
	}

	// Replay after a mid-log checkpoint skips the covered prefix.
	var tail []Record
	if _, err := Replay(dir, 25, func(r Record) error { tail = append(tail, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(tail) != n-25 || tail[0].Seq != 26 {
		t.Fatalf("tail replay got %d records starting at %d", len(tail), tail[0].Seq)
	}
}

// A torn tail — the crash shape — must be truncated and tolerated; the
// same damage mid-log must fail as corruption.
func TestJournalTornTailAndCorruption(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		j, err := Open(dir, 1, Options{SegmentBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			if _, _, err := j.AppendMutation(testMutation(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("torn-tail", func(t *testing.T) {
		dir := build(t)
		segs, _ := listSegments(dir)
		last := segs[len(segs)-1].path
		fi, _ := os.Stat(last)
		if err := os.Truncate(last, fi.Size()-3); err != nil {
			t.Fatal(err)
		}
		count := 0
		next, err := Replay(dir, 0, func(Record) error { count++; return nil })
		if err != nil {
			t.Fatalf("torn tail must be tolerated: %v", err)
		}
		if count != 29 || next != 30 {
			t.Fatalf("replayed %d records (next %d), want 29 (30)", count, next)
		}
		// The torn bytes are gone: a second replay sees a clean log.
		count = 0
		if _, err := Replay(dir, 0, func(Record) error { count++; return nil }); err != nil || count != 29 {
			t.Fatalf("post-truncation replay: %d records, err %v", count, err)
		}
	})

	t.Run("mid-log-corruption", func(t *testing.T) {
		dir := build(t)
		segs, _ := listSegments(dir)
		if len(segs) < 2 {
			t.Fatal("need at least two segments")
		}
		data, _ := os.ReadFile(segs[0].path)
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Replay(dir, 0, func(Record) error { return nil }); err == nil {
			t.Fatal("bit flip in a sealed segment replayed cleanly")
		}
	})

	t.Run("seq-gap", func(t *testing.T) {
		dir := build(t)
		segs, _ := listSegments(dir)
		if err := os.Remove(segs[1].path); err != nil {
			t.Fatal(err)
		}
		if _, err := Replay(dir, 0, func(Record) error { return nil }); err == nil || !strings.Contains(err.Error(), "seq") {
			t.Fatalf("missing middle segment replayed cleanly (err=%v)", err)
		}
	})
}

// Regression: when a durably-installed checkpoint outlives the journal
// tail (fsync=never/interval power loss), the next append sequence must
// resume ABOVE the checkpoint — reusing covered sequence numbers would
// make the following recovery skip acknowledged records — and the stale,
// fully-covered segments must be dropped so the continuity check does not
// trip across the gap.
func TestReplayJournalEndingBelowCheckpoint(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ { // records 1..4 survive; 5..10 died with the page cache
		if _, _, err := j.AppendMutation(testMutation(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	const ckptSeq = 10
	count := 0
	next, err := Replay(dir, ckptSeq, func(Record) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("replayed %d checkpoint-covered records", count)
	}
	if next != ckptSeq+1 {
		t.Fatalf("next append seq %d, must resume above the checkpoint at %d", next, ckptSeq+1)
	}

	// Post-recovery appends carry fresh sequence numbers, and the NEXT
	// recovery must deliver them all.
	j2, err := Open(dir, next, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		seq, _, err := j2.AppendMutation(testMutation(10 + i))
		if err != nil {
			t.Fatal(err)
		}
		if seq != ckptSeq+1+uint64(i) {
			t.Fatalf("post-recovery append got seq %d, want %d", seq, ckptSeq+1+uint64(i))
		}
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	if _, err := Replay(dir, ckptSeq, func(r Record) error { seqs = append(seqs, r.Seq); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 || seqs[0] != 11 || seqs[2] != 13 {
		t.Fatalf("second recovery delivered %v, want [11 12 13]", seqs)
	}
}

// TruncateBelow must delete exactly the sealed segments fully covered by
// the checkpoint and leave the tail replayable.
func TestJournalTruncateBelow(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, 1, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, _, err := j.AppendMutation(testMutation(i)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := listSegments(dir)
	removed, err := j.TruncateBelow(20)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatalf("nothing truncated across %d segments", len(before))
	}
	count := 0
	first := uint64(0)
	if _, err := Replay(dir, 20, func(r Record) error {
		if first == 0 {
			first = r.Seq
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if first != 21 || count != 20 {
		t.Fatalf("post-truncation tail starts at %d with %d records, want 21 with 20", first, count)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// Sync policies: every policy must produce a replayable log; SyncAlways
// must fsync at least once per append, and closed journals reject writes.
func TestJournalSyncPoliciesAndClose(t *testing.T) {
	for _, pol := range []Policy{SyncNever, SyncEvery, SyncAlways} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			j, err := Open(dir, 1, Options{Sync: pol})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if _, _, err := j.AppendMutation(testMutation(i)); err != nil {
					t.Fatal(err)
				}
			}
			if pol == SyncAlways && j.Syncs() < 10 {
				t.Fatalf("SyncAlways issued %d fsyncs for 10 appends", j.Syncs())
			}
			if j.Appends() != 10 || j.AppendedBytes() == 0 {
				t.Fatalf("counters: appends=%d bytes=%d", j.Appends(), j.AppendedBytes())
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			if _, _, err := j.AppendMutation(testMutation(0)); err == nil {
				t.Fatal("append after Close succeeded")
			}
			count := 0
			if _, err := Replay(dir, 0, func(Record) error { count++; return nil }); err != nil || count != 10 {
				t.Fatalf("replay after close: %d records, err %v", count, err)
			}
		})
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{"never": SyncNever, "interval": SyncEvery, "ALWAYS": SyncAlways} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// Checkpoints: atomic install, CRC verification, latest-valid selection,
// and retention-driven pruning.
func TestCheckpointLifecycle(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LatestCheckpoint(dir); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: %v", err)
	}
	for seq := uint64(1); seq <= 4; seq++ {
		payload := []byte(strings.Repeat("x", int(seq)*10))
		if err := WriteCheckpoint(dir, seq*5, payload); err != nil {
			t.Fatal(err)
		}
	}
	seq, payload, err := LatestCheckpoint(dir)
	if err != nil || seq != 20 || len(payload) != 40 {
		t.Fatalf("latest = %d (%d bytes), err %v", seq, len(payload), err)
	}

	// Corrupt the newest: selection must fall back to the previous one.
	path := filepath.Join(dir, ckptName(20))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	seq, payload, err = LatestCheckpoint(dir)
	if err != nil || seq != 15 || len(payload) != 30 {
		t.Fatalf("fallback = %d (%d bytes), err %v", seq, len(payload), err)
	}

	oldest, err := PruneCheckpoints(dir, 2)
	if err != nil || oldest != 15 {
		t.Fatalf("prune kept oldest %d, err %v", oldest, err)
	}
	seqs, _ := Checkpoints(dir)
	if len(seqs) != 2 || seqs[0] != 15 || seqs[1] != 20 {
		t.Fatalf("after prune: %v", seqs)
	}
}
