package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

func testMutation(i int) *graph.Mutation {
	m := &graph.Mutation{NewVertices: i % 3}
	for e := 0; e <= i%4; e++ {
		m.NewEdges = append(m.NewEdges, graph.WeightedEdgeRecord{
			U: graph.VertexID(i + e), V: graph.VertexID(2*i + e + 1), Weight: int32(1 + e)})
	}
	if i%5 == 0 {
		m.RemovedEdges = append(m.RemovedEdges, graph.Edge{From: graph.VertexID(i), To: graph.VertexID(i + 7)})
	}
	return m
}

func mutationsEqual(a, b *graph.Mutation) bool {
	if a.NewVertices != b.NewVertices || len(a.NewEdges) != len(b.NewEdges) || len(a.RemovedEdges) != len(b.RemovedEdges) {
		return false
	}
	for i := range a.NewEdges {
		if a.NewEdges[i] != b.NewEdges[i] {
			return false
		}
	}
	for i := range a.RemovedEdges {
		if a.RemovedEdges[i] != b.RemovedEdges[i] {
			return false
		}
	}
	return true
}

// Append N records across several segments, replay, and require exact
// round-tripping in order with contiguous sequence numbers.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, 1, Options{SegmentBytes: 256}) // force rotations
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	want := make([]*graph.Mutation, 0, n)
	for i := 0; i < n; i++ {
		if i%9 == 8 {
			if _, _, err := j.AppendResize(4 + i); err != nil {
				t.Fatal(err)
			}
			want = append(want, nil)
			continue
		}
		m := testMutation(i)
		seq, frameLen, err := j.AppendMutation(m)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(len(want)+1) {
			t.Fatalf("seq %d, want %d", seq, len(want)+1)
		}
		if frameLen <= 0 {
			t.Fatalf("frame length %d", frameLen)
		}
		want = append(want, m)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("only %d segments; rotation never fired", len(segs))
	}

	var got []Record
	next, err := Replay(dir, 0, func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if next != n+1 {
		t.Fatalf("next seq %d, want %d", next, n+1)
	}
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if want[i] == nil {
			if r.Type != RecordResize || r.NewK != 4+i {
				t.Fatalf("record %d: %+v, want resize to %d", i, r, 4+i)
			}
		} else if r.Type != RecordMutation || !mutationsEqual(r.Mut, want[i]) {
			t.Fatalf("record %d round-trip mismatch: %+v vs %+v", i, r.Mut, want[i])
		}
	}

	// Replay after a mid-log checkpoint skips the covered prefix.
	var tail []Record
	if _, err := Replay(dir, 25, func(r Record) error { tail = append(tail, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(tail) != n-25 || tail[0].Seq != 26 {
		t.Fatalf("tail replay got %d records starting at %d", len(tail), tail[0].Seq)
	}
}

// A torn tail — the crash shape — must be truncated and tolerated; the
// same damage mid-log must fail as corruption.
func TestJournalTornTailAndCorruption(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		j, err := Open(dir, 1, Options{SegmentBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			if _, _, err := j.AppendMutation(testMutation(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("torn-tail", func(t *testing.T) {
		dir := build(t)
		segs, _ := listSegments(dir)
		last := segs[len(segs)-1].path
		fi, _ := os.Stat(last)
		if err := os.Truncate(last, fi.Size()-3); err != nil {
			t.Fatal(err)
		}
		count := 0
		next, err := Replay(dir, 0, func(Record) error { count++; return nil })
		if err != nil {
			t.Fatalf("torn tail must be tolerated: %v", err)
		}
		if count != 29 || next != 30 {
			t.Fatalf("replayed %d records (next %d), want 29 (30)", count, next)
		}
		// The torn bytes are gone: a second replay sees a clean log.
		count = 0
		if _, err := Replay(dir, 0, func(Record) error { count++; return nil }); err != nil || count != 29 {
			t.Fatalf("post-truncation replay: %d records, err %v", count, err)
		}
	})

	t.Run("mid-log-corruption", func(t *testing.T) {
		dir := build(t)
		segs, _ := listSegments(dir)
		if len(segs) < 2 {
			t.Fatal("need at least two segments")
		}
		data, _ := os.ReadFile(segs[0].path)
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Replay(dir, 0, func(Record) error { return nil }); err == nil {
			t.Fatal("bit flip in a sealed segment replayed cleanly")
		}
	})

	t.Run("seq-gap", func(t *testing.T) {
		dir := build(t)
		segs, _ := listSegments(dir)
		if err := os.Remove(segs[1].path); err != nil {
			t.Fatal(err)
		}
		if _, err := Replay(dir, 0, func(Record) error { return nil }); err == nil || !strings.Contains(err.Error(), "seq") {
			t.Fatalf("missing middle segment replayed cleanly (err=%v)", err)
		}
	})
}

// Regression: when a durably-installed checkpoint outlives the journal
// tail (fsync=never/interval power loss), the next append sequence must
// resume ABOVE the checkpoint — reusing covered sequence numbers would
// make the following recovery skip acknowledged records — and the stale,
// fully-covered segments must be dropped so the continuity check does not
// trip across the gap.
func TestReplayJournalEndingBelowCheckpoint(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ { // records 1..4 survive; 5..10 died with the page cache
		if _, _, err := j.AppendMutation(testMutation(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	const ckptSeq = 10
	count := 0
	next, err := Replay(dir, ckptSeq, func(Record) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("replayed %d checkpoint-covered records", count)
	}
	if next != ckptSeq+1 {
		t.Fatalf("next append seq %d, must resume above the checkpoint at %d", next, ckptSeq+1)
	}

	// Post-recovery appends carry fresh sequence numbers, and the NEXT
	// recovery must deliver them all.
	j2, err := Open(dir, next, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		seq, _, err := j2.AppendMutation(testMutation(10 + i))
		if err != nil {
			t.Fatal(err)
		}
		if seq != ckptSeq+1+uint64(i) {
			t.Fatalf("post-recovery append got seq %d, want %d", seq, ckptSeq+1+uint64(i))
		}
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	if _, err := Replay(dir, ckptSeq, func(r Record) error { seqs = append(seqs, r.Seq); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 || seqs[0] != 11 || seqs[2] != 13 {
		t.Fatalf("second recovery delivered %v, want [11 12 13]", seqs)
	}
}

// TruncateBelow must delete exactly the sealed segments fully covered by
// the checkpoint and leave the tail replayable.
func TestJournalTruncateBelow(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, 1, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, _, err := j.AppendMutation(testMutation(i)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := listSegments(dir)
	removed, err := j.TruncateBelow(20)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatalf("nothing truncated across %d segments", len(before))
	}
	count := 0
	first := uint64(0)
	if _, err := Replay(dir, 20, func(r Record) error {
		if first == 0 {
			first = r.Seq
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if first != 21 || count != 20 {
		t.Fatalf("post-truncation tail starts at %d with %d records, want 21 with 20", first, count)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// Sync policies: every policy must produce a replayable log; SyncAlways
// must fsync at least once per append, and closed journals reject writes.
func TestJournalSyncPoliciesAndClose(t *testing.T) {
	for _, pol := range []Policy{SyncNever, SyncEvery, SyncAlways} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			j, err := Open(dir, 1, Options{Sync: pol})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if _, _, err := j.AppendMutation(testMutation(i)); err != nil {
					t.Fatal(err)
				}
			}
			if pol == SyncAlways && j.Syncs() < 10 {
				t.Fatalf("SyncAlways issued %d fsyncs for 10 appends", j.Syncs())
			}
			if j.Appends() != 10 || j.AppendedBytes() == 0 {
				t.Fatalf("counters: appends=%d bytes=%d", j.Appends(), j.AppendedBytes())
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			if _, _, err := j.AppendMutation(testMutation(0)); err == nil {
				t.Fatal("append after Close succeeded")
			}
			count := 0
			if _, err := Replay(dir, 0, func(Record) error { count++; return nil }); err != nil || count != 10 {
				t.Fatalf("replay after close: %d records, err %v", count, err)
			}
		})
	}
}

// AppendGroup must land N records with contiguous sequence numbers and,
// under SyncAlways, a single fsync for the whole group — the group-commit
// contract the serving coordinator's drained-log appends rely on.
func TestJournalAppendGroup(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, 1, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	group := []GroupEntry{
		{Mut: testMutation(1)},
		{Mut: testMutation(2)},
		{NewK: 7},
		{Mut: testMutation(3)},
	}
	first, n, err := j.AppendGroup(group)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || n <= 0 {
		t.Fatalf("group landed at seq %d (%d bytes), want 1", first, n)
	}
	if got := j.Syncs(); got != 1 {
		t.Fatalf("group of %d records issued %d fsyncs, want 1", len(group), got)
	}
	if got := j.Appends(); got != int64(len(group)) {
		t.Fatalf("appends counter %d, want %d", got, len(group))
	}
	if first, _, err := j.AppendGroup(nil); err != nil || first != 0 {
		t.Fatalf("empty group: seq %d, err %v", first, err)
	}
	if _, _, err := j.AppendMutation(testMutation(9)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	if _, err := Replay(dir, 0, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("replayed %d records, want 5", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	if got[2].Type != RecordResize || got[2].NewK != 7 {
		t.Fatalf("mid-group resize round-trip: %+v", got[2])
	}
	if !mutationsEqual(got[3].Mut, group[3].Mut) || !mutationsEqual(got[4].Mut, testMutation(9)) {
		t.Fatal("group-framed mutations did not round-trip")
	}
}

// A group larger than SegmentBytes must still land atomically in one
// segment (rotation happens before the group, never inside it), and the
// log must stay replayable across the oversized segment.
func TestJournalAppendGroupOversized(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, 1, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := j.AppendMutation(testMutation(0)); err != nil {
		t.Fatal(err)
	}
	big := make([]GroupEntry, 16)
	for i := range big {
		big[i] = GroupEntry{Mut: testMutation(i)}
	}
	first, _, err := j.AppendGroup(big)
	if err != nil {
		t.Fatal(err)
	}
	if first != 2 {
		t.Fatalf("group landed at %d, want 2", first)
	}
	if _, _, err := j.AppendMutation(testMutation(20)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	count := 0
	next, err := Replay(dir, 0, func(Record) error { count++; return nil })
	if err != nil || count != 18 || next != 19 {
		t.Fatalf("replayed %d records (next %d, err %v), want 18 (19)", count, next, err)
	}
}

// Regression (ISSUE 5 satellite): Close under SyncEvery must stop the
// background syncer and flush a final fsync even when the interval never
// elapsed — otherwise the tail written since the last tick would ride on
// the page cache alone after a clean shutdown.
func TestJournalSyncEveryCloseFlushes(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, 1, Options{Sync: SyncEvery, SyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := j.AppendMutation(testMutation(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.Syncs(); got != 0 {
		t.Fatalf("%d fsyncs before the first interval tick", got)
	}
	done := j.done
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := j.Syncs(); got < 1 {
		t.Fatal("Close did not flush a final sync")
	}
	select {
	case <-done:
	default:
		t.Fatal("Close returned with the background syncer still running")
	}
	if _, _, err := j.AppendMutation(testMutation(9)); err == nil {
		t.Fatal("append after Close succeeded")
	}
	count := 0
	if _, err := Replay(dir, 0, func(Record) error { count++; return nil }); err != nil || count != 3 {
		t.Fatalf("replay after close: %d records, err %v", count, err)
	}
}

// Leader/follower fsync combining, observed deterministically by gating
// the fsync hook: while appender A's fsync is held open, B and C write
// their frames and park as followers; A's sync only covers what was
// written when it STARTED, so exactly one more combined fsync — led by
// B or C, covering both — must follow. Three concurrent SyncAlways
// appends, exactly two fsyncs, and nobody is acknowledged before the
// fsync that covers their record completes.
func TestJournalFsyncCombining(t *testing.T) {
	entered := make(chan struct{}, 8)
	gate := make(chan struct{})
	orig := fsyncFile
	fsyncFile = func(f *os.File) error {
		entered <- struct{}{}
		<-gate
		return orig(f)
	}
	defer func() { fsyncFile = orig }()

	dir := t.TempDir()
	j, err := Open(dir, 1, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	appendOne := func(i int) {
		defer wg.Done()
		if _, _, err := j.AppendMutation(testMutation(i)); err != nil {
			t.Error(err)
		}
	}
	wg.Add(1)
	go appendOne(0)
	<-entered // A wrote record 1 and is the sync leader, parked in fsync
	wg.Add(2)
	go appendOne(1)
	go appendOne(2)
	// Wait until B and C have staged+written their frames (they then park
	// as followers on the condition variable: records 2 and 3 exist but
	// are not covered by A's in-flight sync).
	deadline := time.Now().Add(5 * time.Second)
	for j.NextSeq() != 4 {
		if time.Now().After(deadline) {
			t.Fatal("followers never wrote their records")
		}
		time.Sleep(time.Millisecond)
	}
	gate <- struct{}{} // release A's fsync: covers record 1 only
	<-entered          // one follower leads the next combined sync (records 2+3)
	gate <- struct{}{} // release it
	wg.Wait()
	select {
	case <-entered:
		t.Fatal("a third fsync ran; followers did not share the combined sync")
	default:
	}
	if got := j.Syncs(); got != 2 {
		t.Fatalf("%d fsyncs for 3 concurrent appends, want exactly 2 (leader + one combined)", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if _, err := Replay(dir, 0, func(Record) error { count++; return nil }); err != nil || count != 3 {
		t.Fatalf("replay: %d records, err %v", count, err)
	}
}

// Concurrent appenders under SyncAlways must all be acknowledged durable
// with every record replaying in contiguous sequence order. Small
// segments force rotations to interleave with in-flight combined syncs —
// the case where an appender must restage its frames rather than rotate
// on stale state. (Fsync sharing itself is asserted deterministically by
// TestJournalFsyncCombining; the sync-count bound here only sanity-checks
// that no path double-syncs.) Run with -race via make test-race.
func TestJournalConcurrentGroupCommit(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, 1, Options{Sync: SyncAlways, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, _, err := j.AppendMutation(testMutation(w*perWriter + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity bound, not a combining assertion (see TestJournalFsyncCombining):
	// each append leads at most one policy sync and rotations add one per
	// sealed segment, so anything above that means a path double-syncs.
	if total := j.Syncs(); total > j.Appends()+int64(len(segs)) {
		t.Fatalf("%d fsyncs for %d appends across %d segments: some path double-syncs",
			total, j.Appends(), len(segs))
	}
	if len(segs) < 2 {
		t.Fatalf("only %d segments; rotation never interleaved with the combined syncs", len(segs))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if _, err := Replay(dir, 0, func(r Record) error {
		count++
		if r.Seq != uint64(count) {
			return fmt.Errorf("seq %d at position %d", r.Seq, count)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", count, writers*perWriter)
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{"never": SyncNever, "interval": SyncEvery, "ALWAYS": SyncAlways} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// Checkpoints: atomic install, CRC verification, latest-valid selection,
// and retention-driven pruning.
func TestCheckpointLifecycle(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := LatestCheckpoint(dir); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: %v", err)
	}
	for seq := uint64(1); seq <= 4; seq++ {
		payload := []byte(strings.Repeat("x", int(seq)*10))
		if err := WriteCheckpoint(dir, seq*5, payload); err != nil {
			t.Fatal(err)
		}
	}
	seq, payload, err := LatestCheckpoint(dir)
	if err != nil || seq != 20 || len(payload) != 40 {
		t.Fatalf("latest = %d (%d bytes), err %v", seq, len(payload), err)
	}

	// Corrupt the newest: selection must fall back to the previous one.
	path := filepath.Join(dir, ckptName(20))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	seq, payload, err = LatestCheckpoint(dir)
	if err != nil || seq != 15 || len(payload) != 30 {
		t.Fatalf("fallback = %d (%d bytes), err %v", seq, len(payload), err)
	}

	oldest, err := PruneCheckpoints(dir, 2)
	if err != nil || oldest != 15 {
		t.Fatalf("prune kept oldest %d, err %v", oldest, err)
	}
	seqs, _ := Checkpoints(dir)
	if len(seqs) != 2 || seqs[0] != 15 || seqs[1] != 20 {
		t.Fatalf("after prune: %v", seqs)
	}
}
