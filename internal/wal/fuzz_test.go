package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// buildSeedJournal writes a small valid journal into dir and returns the
// single segment's bytes.
func buildSeedJournal(tb testing.TB, dir string) []byte {
	j, err := Open(dir, 1, Options{})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if i == 3 {
			if _, _, err := j.AppendResize(7); err != nil {
				tb.Fatal(err)
			}
			continue
		}
		if _, _, err := j.AppendMutation(testMutation(i)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		tb.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		tb.Fatalf("seed journal: %d segments, err %v", len(segs), err)
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzJournalReplay feeds arbitrary bytes to the journal decoder as a
// single (and therefore last) segment. Whatever the damage — truncation,
// bit flips, hostile length prefixes — Replay must never panic and never
// over-allocate, and every record it does deliver must carry a contiguous
// sequence number; when the input is a prefix-damaged copy of a valid
// journal, the delivered records must be the undamaged prefix.
func FuzzJournalReplay(f *testing.F) {
	seedDir := f.TempDir()
	seed := buildSeedJournal(f, seedDir)
	f.Add(seed)
	f.Add(seed[:len(seed)-1])       // torn tail
	f.Add(seed[:frameHeader])       // bare frame header
	f.Add([]byte{})                 // empty segment
	f.Add([]byte("not a journal!")) // garbage
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)
	huge := append([]byte(nil), seed...)
	binary.LittleEndian.PutUint32(huge, 0xffffffff) // hostile length prefix
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		want := uint64(1)
		next, err := Replay(dir, 0, func(r Record) error {
			if r.Seq != want {
				t.Fatalf("record seq %d, want %d", r.Seq, want)
			}
			want++
			switch r.Type {
			case RecordMutation:
				if r.Mut == nil {
					t.Fatal("mutation record without mutation")
				}
			case RecordResize:
				if r.NewK < 1 {
					t.Fatalf("resize record to k=%d", r.NewK)
				}
			default:
				t.Fatalf("unknown record type %d delivered", r.Type)
			}
			return nil
		})
		if err == nil && next != want {
			t.Fatalf("next=%d after %d records", next, want-1)
		}
		// A successful replay truncated any torn tail; a second pass must
		// be error-free and deliver the identical record count.
		if err == nil {
			count := uint64(1)
			if _, err2 := Replay(dir, 0, func(Record) error { count++; return nil }); err2 != nil || count != want {
				t.Fatalf("second pass: %d records, err %v (first pass %d)", count-1, err2, want-1)
			}
		}
	})
}

// The checkpoint+replay property at the wal layer: any checkpoint seq
// must partition the record stream exactly — replaying from it yields
// precisely the records after it, bit-identical.
func FuzzReplayAfterSeq(f *testing.F) {
	seedDir := f.TempDir()
	seed := buildSeedJournal(f, seedDir)
	f.Add(seed, uint64(0))
	f.Add(seed, uint64(3))
	f.Add(seed, uint64(99))
	f.Fuzz(func(t *testing.T, data []byte, after uint64) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		var all []Record
		if _, err := Replay(dir, 0, func(r Record) error { all = append(all, r); return nil }); err != nil {
			t.Skip("not a valid journal")
		}
		var tail []Record
		if _, err := Replay(dir, after, func(r Record) error { tail = append(tail, r); return nil }); err != nil {
			t.Fatalf("full replay passed but tail replay failed: %v", err)
		}
		wantLen := 0
		for _, r := range all {
			if r.Seq > after {
				wantLen++
			}
		}
		if len(tail) != wantLen {
			t.Fatalf("tail after %d has %d records, want %d", after, len(tail), wantLen)
		}
		for i, r := range tail {
			if r.Seq != all[len(all)-wantLen+i].Seq {
				t.Fatalf("tail record %d has seq %d", i, r.Seq)
			}
		}
	})
}
