package wal

import (
	"os"
	"strings"
	"testing"

	"repro/internal/graph"
)

func segmentCount(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), segSuffix) {
			n++
		}
	}
	return n
}

// retainedRange reports the [first, last] sequence range still readable
// from the journal directory.
func retainedRange(t *testing.T, dir string) (uint64, uint64) {
	t.Helper()
	_, first, last, err := ReadFramesAfter(dir, 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	return first, last
}

// The truncate-under-replication race: a checkpoint-driven TruncateBelow
// must not reclaim segments a connected follower still needs. SetRetention
// pins a floor; truncation clamps to it, and clearing the pin reclaims.
func TestTruncateBelowRespectsRetentionFloor(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, 1, Options{Sync: SyncNever, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	mut := &graph.Mutation{NewEdges: []graph.WeightedEdgeRecord{{U: 0, V: 1, Weight: 2}}}
	for i := 0; i < 40; i++ {
		if _, _, err := j.AppendMutation(mut); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	before := segmentCount(t, dir)
	if before < 3 {
		t.Fatalf("only %d segments; need rotation for the test to bite", before)
	}

	// A follower still needs everything from seq 5 on: a checkpoint at 30
	// may only truncate below 5.
	j.SetRetention(5)
	if _, err := j.TruncateBelow(30); err != nil {
		t.Fatal(err)
	}
	first, last := retainedRange(t, dir)
	if first == 0 || first > 5 {
		t.Fatalf("journal starts at seq %d after pinned truncation, want <= 5 (retention floor ignored)", first)
	}
	if last != 40 {
		t.Fatalf("journal ends at seq %d, want 40", last)
	}

	// Follower disconnects: the pin clears and the same truncation
	// reclaims segments below 30.
	j.SetRetention(0)
	if _, err := j.TruncateBelow(30); err != nil {
		t.Fatal(err)
	}
	first, last = retainedRange(t, dir)
	if first <= 5 {
		t.Fatalf("journal still starts at seq %d after clearing retention, want > 5 (nothing reclaimed)", first)
	}
	if first > 31 {
		t.Fatalf("journal starts at seq %d, want <= 31 (truncation overshot)", first)
	}
	if last != 40 {
		t.Fatalf("journal ends at seq %d, want 40", last)
	}
	if after := segmentCount(t, dir); after >= before {
		t.Fatalf("segments %d -> %d, want fewer after truncation", before, after)
	}
}

// A floor above the truncation point must not widen it: TruncateBelow(seq)
// with retention > seq truncates below seq as usual.
func TestTruncateBelowFloorAboveSeq(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, 1, Options{Sync: SyncNever, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	mut := &graph.Mutation{NewEdges: []graph.WeightedEdgeRecord{{U: 0, V: 1, Weight: 2}}}
	for i := 0; i < 20; i++ {
		if _, _, err := j.AppendMutation(mut); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	j.SetRetention(100) // follower already past the tail
	if _, err := j.TruncateBelow(10); err != nil {
		t.Fatal(err)
	}
	first, last := retainedRange(t, dir)
	if first == 0 || first > 10 {
		t.Fatalf("journal starts at seq %d, want <= 10 (truncation overshot seq)", first)
	}
	if last != 20 {
		t.Fatalf("journal ends at seq %d, want 20", last)
	}
}
