package wal

// Delta checkpoint files: ckpt-%016x.dckp beside the full ckpt-*.ckpt
// files, where the hex field is the journal sequence the delta covers and
// the header names the sequence of the encoding it chains from (the
// previous full checkpoint or the previous delta). A base checkpoint plus
// its chain of deltas re-composes the same state the full checkpoint at
// the tip sequence would hold, at a fraction of the bytes when churn is
// low — the payload is opaque here (internal/serve encodes changed label
// runs against the previous encoding), with the same tmp+fsync+rename
// install and trailing CRC-32C discipline as full checkpoints.
//
// Chain walking (LatestChain) is deliberately forgiving: a damaged or
// missing link just ends the chain early, and recovery replays a longer
// journal tail from the last good link — the journal is only ever
// truncated below the oldest retained FULL checkpoint, so the records a
// shortened chain needs are still on disk.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

const (
	dckpSuffix = ".dckp"
	dckpMagic  = 0x53504b44 // "SPKD"
	dckpHdr    = 24         // u32 magic | u64 seq | u64 prevSeq | u32 crc
)

func dckpName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", ckptPrefix, seq, dckpSuffix)
}

// WriteDeltaCheckpoint atomically installs a delta checkpoint covering
// journal sequence seq, chained onto the encoding at prevSeq.
func WriteDeltaCheckpoint(dir string, seq, prevSeq uint64, payload []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ckptPrefix+"*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	var hdr [dckpHdr]byte
	binary.LittleEndian.PutUint32(hdr[0:], dckpMagic)
	binary.LittleEndian.PutUint64(hdr[4:], seq)
	binary.LittleEndian.PutUint64(hdr[12:], prevSeq)
	binary.LittleEndian.PutUint32(hdr[20:], crc32.Checksum(payload, crcTable))
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, dckpName(seq))); err != nil {
		return err
	}
	return syncDir(dir)
}

// ReadDeltaCheckpoint loads and verifies the delta checkpoint covering
// seq, returning the sequence it chains from and its payload.
func ReadDeltaCheckpoint(dir string, seq uint64) (prevSeq uint64, payload []byte, err error) {
	data, err := os.ReadFile(filepath.Join(dir, dckpName(seq)))
	if err != nil {
		return 0, nil, err
	}
	if len(data) < dckpHdr {
		return 0, nil, fmt.Errorf("wal: delta checkpoint %d truncated at %d bytes", seq, len(data))
	}
	if binary.LittleEndian.Uint32(data) != dckpMagic {
		return 0, nil, fmt.Errorf("wal: delta checkpoint %d has bad magic", seq)
	}
	if got := binary.LittleEndian.Uint64(data[4:]); got != seq {
		return 0, nil, fmt.Errorf("wal: delta checkpoint file for seq %d declares seq %d", seq, got)
	}
	prevSeq = binary.LittleEndian.Uint64(data[12:])
	payload = data[dckpHdr:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[20:]) {
		return 0, nil, fmt.Errorf("wal: delta checkpoint %d fails CRC", seq)
	}
	return prevSeq, payload, nil
}

// DeltaCheckpoints lists the delta checkpoint sequence numbers in dir,
// ascending. Non-matching files (including temp leftovers) are ignored.
func DeltaCheckpoints(dir string) ([]uint64, error) {
	files, err := scanSeqFiles(dir, ckptPrefix, dckpSuffix)
	if err != nil {
		return nil, err
	}
	seqs := make([]uint64, len(files))
	for i, f := range files {
		seqs[i] = f.first
	}
	return seqs, nil
}

// DeltaLink is one verified link of a checkpoint chain.
type DeltaLink struct {
	Seq     uint64 // journal sequence this link covers
	PrevSeq uint64 // the encoding it chains from (base or previous link)
	Payload []byte
}

// LatestChain finds the newest recoverable encoding in dir: the newest
// full checkpoint that verifies, plus the longest verified chain of delta
// checkpoints on top of it (each link's PrevSeq naming the previous
// link's Seq). An unreadable link ends the chain early — recovery then
// replays a longer journal tail from the last good link. Falls back past
// a damaged newest full checkpoint exactly like LatestCheckpoint (a chain
// written against the damaged base is unreachable from the older base and
// is simply not followed). Returns ErrNoCheckpoint (wrapped) when no full
// checkpoint verifies.
func LatestChain(dir string) (baseSeq uint64, base []byte, chain []DeltaLink, err error) {
	baseSeq, base, err = LatestCheckpoint(dir)
	if err != nil {
		return 0, nil, nil, err
	}
	dseqs, err := DeltaCheckpoints(dir)
	if err != nil {
		return 0, nil, nil, err
	}
	// Walk the chain: the link extending the encoding at cur is the delta
	// whose header names cur as its predecessor. A live process writes the
	// chain sequentially and every restart rebases onto a fresh full
	// checkpoint (pruning superseded deltas), so at most one link extends
	// any tip; scanning ascending makes the walk deterministic regardless.
	cur := baseSeq
	for {
		extended := false
		for _, ds := range dseqs {
			if ds <= cur {
				continue
			}
			prev, payload, err := ReadDeltaCheckpoint(dir, ds)
			if err != nil || prev != cur {
				continue
			}
			chain = append(chain, DeltaLink{Seq: ds, PrevSeq: prev, Payload: payload})
			cur = ds
			extended = true
			break
		}
		if !extended {
			return baseSeq, base, chain, nil
		}
	}
}

// PruneDeltaCheckpointsBelow deletes delta checkpoints with Seq <= seq —
// the retention pass after a full rebase, which supersedes the old chain.
func PruneDeltaCheckpointsBelow(dir string, seq uint64) error {
	dseqs, err := DeltaCheckpoints(dir)
	if err != nil {
		return err
	}
	removed := false
	for _, ds := range dseqs {
		if ds > seq {
			continue
		}
		if err := os.Remove(filepath.Join(dir, dckpName(ds))); err != nil {
			return err
		}
		removed = true
	}
	if removed {
		return syncDir(dir)
	}
	return nil
}
