// Package wal is the durability layer under the serving stack: a
// segmented, CRC-framed write-ahead journal of graph mutations and
// elastic resizes, plus atomically-installed checkpoint files. The
// serving layer (internal/serve) journals every accepted entry before
// applying it and periodically checkpoints its composed state; after a
// crash, recovery loads the latest valid checkpoint and replays the
// journal tail, so a maintained partitioning — the thing the paper argues
// is too expensive to recompute from scratch — survives process death.
//
// # Journal format
//
// A journal is a directory of segment files named wal-%016x.log, where
// the hex field is the sequence number of the first record the segment
// holds. Records are framed as
//
//	u32 payload length | u32 CRC-32C(payload) | payload
//	payload = u64 sequence | u8 record type | body
//
// with all integers little-endian. Sequence numbers are assigned by
// Append, start at 1, and increase by exactly 1 per record across segment
// boundaries — a gap or regression is corruption, not a torn write.
// Segments rotate once they pass Options.SegmentBytes, and every process
// start opens a fresh segment, so already-synced data is never rewritten.
//
// # Torn writes vs corruption
//
// Replay distinguishes the two failure shapes a log can have:
//
//   - A bad frame at the tail of the LAST segment — short header, short
//     payload, or CRC mismatch — is a torn write from the crash. Replay
//     truncates the segment at the last good frame and reports success:
//     those bytes were never acknowledged as durable.
//   - A bad frame anywhere else (an earlier segment, or a CRC-valid
//     payload that fails to decode, or a sequence gap) is real
//     mid-log corruption and fails recovery loudly. Silent truncation
//     there would drop acknowledged mutations.
//
// # Fsync policy
//
// SyncAlways fsyncs after every append (every acknowledged record
// survives OS death), SyncEvery fsyncs on a background interval (bounded
// loss window, near-SyncNever throughput), SyncNever leaves flushing to
// the OS (process crashes lose nothing — the page cache survives — but
// power loss can). Rotation and Close always sync regardless of policy.
//
// # Group commit
//
// The cost of SyncAlways is the disk barrier, not the framing, so the
// journal amortizes it two ways. AppendGroup frames any number of records
// into one staging buffer and lands them with a single write syscall and
// (under SyncAlways) a single fsync — the serving coordinator drains its
// whole pending mutation log into one group, so the barrier is paid per
// burst, not per record. Independently, concurrent Append*/AppendGroup
// callers combine fsyncs: the first caller needing durability becomes the
// sync leader and fsyncs once for every record written before the sync
// started, while later callers park on a condition variable; when the
// leader finishes it wakes all waiters, whose records are either already
// covered (they return) or lead the next combined sync. Records are never
// acknowledged before the fsync that covers them completes, so the
// durability guarantee of SyncAlways is unchanged — only its price.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// RecordType discriminates journal payloads.
type RecordType uint8

const (
	// RecordMutation is a graph.Mutation batch.
	RecordMutation RecordType = 1
	// RecordResize is an elastic partition-count change.
	RecordResize RecordType = 2
)

// Record is one journaled entry: a mutation batch or a resize.
type Record struct {
	Seq  uint64
	Type RecordType
	Mut  *graph.Mutation // RecordMutation
	NewK int             // RecordResize
}

// Policy selects when appended records are fsynced.
type Policy int

const (
	// SyncNever leaves flushing to the OS page cache.
	SyncNever Policy = iota
	// SyncEvery fsyncs on a background interval (Options.SyncInterval).
	SyncEvery
	// SyncAlways fsyncs after every append.
	SyncAlways
)

// String returns the flag spelling of p.
func (p Policy) String() string {
	switch p {
	case SyncNever:
		return "never"
	case SyncEvery:
		return "interval"
	case SyncAlways:
		return "always"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy parses the -fsync flag spellings never|interval|always.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "never":
		return SyncNever, nil
	case "interval":
		return SyncEvery, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want never|interval|always)", s)
}

// Options tunes a Journal.
type Options struct {
	// SegmentBytes rotates to a new segment file once the active one
	// passes this size. Default 4 MiB.
	SegmentBytes int64
	// Sync is the fsync policy. Default SyncNever.
	Sync Policy
	// SyncInterval is the background fsync period under SyncEvery.
	// Default 50ms.
	SyncInterval time.Duration
	// AppendsCounter, BytesCounter and SyncsCounter, when non-nil, are
	// incremented alongside the journal's internal counters so callers
	// (metrics.ServeCounters) see journal traffic without polling.
	AppendsCounter, BytesCounter, SyncsCounter *atomic.Int64
}

func (o *Options) normalize() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 50 * time.Millisecond
	}
}

const (
	frameHeader = 8 // u32 length + u32 crc
	recHeader   = 9 // u64 seq + u8 type
	// MaxRecordBytes bounds a single record; a length prefix past it is
	// treated as a bad frame rather than an allocation request.
	MaxRecordBytes = 1 << 28

	segPrefix = "wal-"
	segSuffix = ".log"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// fsyncFile is the fsync used by the combined-sync path
// (ensureDurableLocked); a package variable so tests can gate it to
// deterministically observe leader/follower combining, and so
// InjectFaults can make it fail. Rotation and Close sync directly — they
// are not part of the combining protocol.
var fsyncFile = (*os.File).Sync

// writeFile is the segment write used by AppendGroup; a package variable
// (the write-error twin of fsyncFile) so InjectFaults can fail or
// short-count journal writes deterministically.
var writeFile = (*os.File).Write

// InjectFaults swaps the journal append-write and combined-fsync seams
// for the given implementations and returns a func that restores the
// real ones. A nil write or sync leaves that seam untouched. Test-only:
// the seams are package-global, so callers must restore before any
// journal they do not intend to fault appends, and must not inject from
// concurrent tests.
func InjectFaults(write func(*os.File, []byte) (int, error), sync func(*os.File) error) (restore func()) {
	prevWrite, prevSync := writeFile, fsyncFile
	if write != nil {
		writeFile = write
	}
	if sync != nil {
		fsyncFile = sync
	}
	return func() { writeFile, fsyncFile = prevWrite, prevSync }
}

// Journal is an append-only segmented log. Appends are safe for
// concurrent use; concurrent callers under SyncAlways share fsyncs (see
// the group-commit section of the package comment). In the serving layer
// the coordinator goroutine is the only writer and amortization comes
// from AppendGroup instead.
type Journal struct {
	dir string
	opt Options

	mu       sync.Mutex
	syncCond *sync.Cond // signals sync completion (synced advance, err, leader exit)
	syncing  bool       // a leader fsync is in flight with mu released
	synced   uint64     // highest sequence number known durable
	f        *os.File
	segBytes int64
	nextSeq  uint64
	buf      []byte // frame staging buffer, reused across appends
	err      error  // sticky I/O error; all appends fail after it

	appends atomic.Int64
	bytes   atomic.Int64
	syncs   atomic.Int64
	retain  atomic.Uint64 // lowest seq a connected follower still needs; 0 = none

	stop chan struct{} // closes the background syncer
	done chan struct{}
}

// Open creates (if needed) the journal directory and starts a fresh
// segment whose first record will carry sequence number nextSeq. Existing
// segments are left in place for Replay and TruncateBelow; a leftover
// segment with the same starting sequence (a crash before any append) is
// overwritten — its records, had any been valid, would have advanced
// nextSeq past it during Replay.
func Open(dir string, nextSeq uint64, opt Options) (*Journal, error) {
	if nextSeq == 0 {
		return nil, fmt.Errorf("wal: sequence numbers start at 1")
	}
	opt.normalize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	j := &Journal{dir: dir, opt: opt, nextSeq: nextSeq, synced: nextSeq - 1}
	j.syncCond = sync.NewCond(&j.mu)
	if err := j.openSegment(); err != nil {
		return nil, err
	}
	if opt.Sync == SyncEvery {
		j.stop = make(chan struct{})
		j.done = make(chan struct{})
		go j.syncLoop()
	}
	return j, nil
}

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix)
}

// openSegment opens the segment that will hold j.nextSeq, truncating any
// leftover file of the same name, and durably records the new directory
// entry. Callers hold j.mu (or own j exclusively).
func (j *Journal) openSegment() error {
	f, err := os.OpenFile(filepath.Join(j.dir, segName(j.nextSeq)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	j.f = f
	j.segBytes = 0
	return syncDir(j.dir)
}

// GroupEntry is one record of a group append: a mutation batch when Mut
// is non-nil, otherwise an elastic resize to NewK partitions.
type GroupEntry struct {
	Mut  *graph.Mutation
	NewK int
}

// AppendMutation journals one mutation batch and returns its sequence
// number and encoded frame size.
func (j *Journal) AppendMutation(m *graph.Mutation) (seq uint64, n int, err error) {
	return j.AppendGroup([]GroupEntry{{Mut: m}})
}

// AppendResize journals one elastic resize to newK partitions.
func (j *Journal) AppendResize(newK int) (seq uint64, n int, err error) {
	return j.AppendGroup([]GroupEntry{{NewK: newK}})
}

// AppendGroup journals a group of records with consecutive sequence
// numbers (the first is returned), framed into one staging buffer and
// written with a single syscall; under SyncAlways the whole group rides
// one fsync — the group-commit write path. The group is durable as a
// unit when AppendGroup returns: either every record was acknowledged or
// none was written. n is the total encoded size. An empty group is a
// no-op.
func (j *Journal) AppendGroup(entries []GroupEntry) (firstSeq uint64, n int, err error) {
	if len(entries) == 0 {
		return 0, 0, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return 0, 0, j.err
	}

	// Stage every frame back to back, then write them with one syscall:
	// per record a header placeholder, payload header, body. Staging and
	// rotation run entirely under j.mu — EXCEPT when rotation must wait
	// out an in-flight combined sync, which releases the mutex: another
	// appender may then reuse the staging buffer and claim our sequence
	// numbers, so after such a wait the whole group is re-staged from the
	// fresh j.nextSeq rather than rotated on stale state.
	var buf []byte
	for {
		if j.err != nil {
			return 0, 0, j.err
		}
		firstSeq = j.nextSeq
		buf = j.buf[:0]
		for i := range entries {
			off := len(buf)
			buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // length+crc, patched below
			buf = binary.LittleEndian.AppendUint64(buf, firstSeq+uint64(i))
			if m := entries[i].Mut; m != nil {
				buf = append(buf, byte(RecordMutation))
				buf = graph.AppendMutationBinary(buf, m)
			} else {
				buf = append(buf, byte(RecordResize))
				buf = binary.LittleEndian.AppendUint32(buf, uint32(entries[i].NewK))
			}
			payload := buf[off+frameHeader:]
			if len(payload) > MaxRecordBytes {
				j.buf = buf[:0]
				return 0, 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes", len(payload))
			}
			binary.LittleEndian.PutUint32(buf[off:], uint32(len(payload)))
			binary.LittleEndian.PutUint32(buf[off+4:], crc32.Checksum(payload, crcTable))
		}
		j.buf = buf
		if j.segBytes == 0 || j.segBytes+int64(len(buf)) <= j.opt.SegmentBytes {
			break // fits the active segment
		}
		if j.syncing {
			for j.syncing {
				j.syncCond.Wait()
			}
			continue // mutex was released: restage before deciding again
		}
		if err := j.rotateLocked(); err != nil {
			j.err = err
			return 0, 0, err
		}
		break // fresh segment; the staged frames are still valid
	}
	if n, err := writeFile(j.f, buf); err != nil || n != len(buf) {
		// A failed or short write leaves the segment tail in an unknown
		// state; poison the journal so no later append can frame records
		// after bytes that may be torn.
		if err == nil {
			err = io.ErrShortWrite
		}
		j.err = err
		return 0, 0, err
	}
	j.segBytes += int64(len(buf))
	j.nextSeq += uint64(len(entries))
	if j.opt.Sync == SyncAlways {
		if err := j.ensureDurableLocked(j.nextSeq - 1); err != nil {
			return 0, 0, err
		}
	}
	j.appends.Add(int64(len(entries)))
	j.bytes.Add(int64(len(buf)))
	if j.opt.AppendsCounter != nil {
		j.opt.AppendsCounter.Add(int64(len(entries)))
	}
	if j.opt.BytesCounter != nil {
		j.opt.BytesCounter.Add(int64(len(buf)))
	}
	return firstSeq, len(buf), nil
}

// ensureDurableLocked blocks until every record with sequence <= seq is
// fsynced, combining concurrent callers into shared fsyncs: the first
// waiter becomes the sync leader and fsyncs once for everything written
// before the sync started (releasing j.mu for the fsync itself, so
// writers keep appending into the group the NEXT sync will cover); later
// waiters park on the condition variable and are woken when the leader
// finishes — either covered, or leading the next combined sync.
// Callers hold j.mu.
func (j *Journal) ensureDurableLocked(seq uint64) error {
	for {
		// Durability first, THEN the sticky error: a caller whose records
		// an earlier combined sync already covered must be acknowledged
		// even if another appender poisoned the journal afterwards —
		// reporting a durably-synced group as failed would let recovery
		// resurrect a batch its writer was told was rejected.
		if j.synced >= seq {
			return nil
		}
		if j.err != nil {
			return j.err
		}
		if j.syncing {
			j.syncCond.Wait()
			continue
		}
		j.syncing = true
		f, mark := j.f, j.nextSeq-1
		j.mu.Unlock()
		err := fsyncFile(f)
		j.mu.Lock()
		j.syncing = false
		j.syncCond.Broadcast()
		if err != nil {
			if j.err == nil {
				j.err = err
			}
			return err
		}
		j.countSyncLocked()
		if mark > j.synced {
			j.synced = mark
		}
	}
}

// rotateLocked seals the active segment (sync + close) and opens the
// next. Callers hold j.mu and must have checked that no combined sync is
// in flight (j.syncing false); the mutex is never released here, so no
// other appender can interleave with the rotation.
func (j *Journal) rotateLocked() error {
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.countSyncLocked()
	if j.nextSeq-1 > j.synced {
		j.synced = j.nextSeq - 1 // everything written so far is in this file
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	return j.openSegment()
}

func (j *Journal) countSyncLocked() {
	j.syncs.Add(1)
	if j.opt.SyncsCounter != nil {
		j.opt.SyncsCounter.Add(1)
	}
}

// Sync makes every appended record durable regardless of policy,
// sharing an in-flight combined fsync when one covers the tail.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.ensureDurableLocked(j.nextSeq - 1)
}

func (j *Journal) syncLoop() {
	defer close(j.done)
	t := time.NewTicker(j.opt.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			j.mu.Lock()
			if j.err == nil && j.synced < j.nextSeq-1 {
				_ = j.ensureDurableLocked(j.nextSeq - 1) // failure is sticky in j.err
			}
			j.mu.Unlock()
		case <-j.stop:
			return
		}
	}
}

// Close stops the background syncer, flushes a final fsync of the active
// segment, and closes it. The journal is unusable afterwards.
func (j *Journal) Close() error {
	if j.stop != nil {
		close(j.stop)
		<-j.done
		j.stop = nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.syncing {
		j.syncCond.Wait() // an in-flight combined sync still holds the file
	}
	if j.f == nil {
		return j.err
	}
	err := j.err
	if err == nil {
		if err = j.f.Sync(); err == nil {
			j.countSyncLocked()
			if j.nextSeq-1 > j.synced {
				j.synced = j.nextSeq - 1
			}
		}
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	if j.err == nil {
		j.err = fmt.Errorf("wal: journal closed")
	}
	return err
}

// Err returns the journal's sticky I/O error: non-nil once an append
// write or fsync has failed (every later append fails with it) or after
// Close. A storage-layer caller uses it to tell a poisoned journal —
// fail stop, recover via Replay — from a per-call rejection such as an
// oversized record, which does not poison.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// NextSeq returns the sequence number the next append will carry.
func (j *Journal) NextSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq
}

// Appends, AppendedBytes and Syncs report lifetime journal traffic.
func (j *Journal) Appends() int64       { return j.appends.Load() }
func (j *Journal) AppendedBytes() int64 { return j.bytes.Load() }
func (j *Journal) Syncs() int64         { return j.syncs.Load() }

// SetRetention establishes a truncation floor: records with sequence
// numbers >= floor stay on disk regardless of what TruncateBelow is asked
// to reclaim. Replication uses it to pin the journal tail a connected
// follower has not consumed yet — without the floor, a checkpoint landing
// between a follower's reads would reclaim segments the follower still
// needs and force a full re-bootstrap. floor 0 clears the pin. Safe for
// concurrent use with appends and truncation.
func (j *Journal) SetRetention(floor uint64) { j.retain.Store(floor) }

// TruncateBelow deletes every sealed segment whose records all have
// sequence numbers <= seq — the space-reclamation step after a checkpoint
// at seq. The bound is clamped below any retention floor set by
// SetRetention, so segments a connected follower still needs survive the
// checkpoint that would otherwise cover them. The active segment is never
// deleted. Returns the number of segments removed.
func (j *Journal) TruncateBelow(seq uint64) (int, error) {
	if floor := j.retain.Load(); floor > 0 && floor <= seq {
		seq = floor - 1
	}
	j.mu.Lock()
	active := j.nextSeq // segments starting at or after this are unsealed
	j.mu.Unlock()
	segs, err := listSegments(j.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i := 0; i+1 < len(segs); i++ {
		// Segment i covers [segs[i].first, segs[i+1].first-1].
		if segs[i+1].first > seq+1 || segs[i].first >= active {
			break
		}
		if err := os.Remove(segs[i].path); err != nil {
			return removed, err
		}
		removed++
	}
	if removed > 0 {
		if err := syncDir(j.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

type segment struct {
	first uint64
	path  string
}

// scanSeqFiles lists the files in dir named prefix+%016x+suffix, sorted
// ascending by the parsed sequence field — the shared directory scan
// behind journal segments and checkpoints. Files that do not match the
// naming scheme (including leftover temp files) are ignored; an absent
// directory is an empty listing.
func scanSeqFiles(dir, prefix, suffix string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []segment
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), "%016x", &seq); err != nil {
			continue
		}
		out = append(out, segment{first: seq, path: filepath.Join(dir, name)})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].first < out[k].first })
	return out, nil
}

// listSegments returns the journal's segment files sorted by first
// sequence number.
func listSegments(dir string) ([]segment, error) {
	return scanSeqFiles(dir, segPrefix, segSuffix)
}

// Replay scans the journal in dir in sequence order, invoking fn for
// every record with Seq > afterSeq, and returns the sequence number the
// next append should carry. A torn tail — a bad frame at the end of the
// last segment — is truncated in place and tolerated; any other framing,
// decoding or sequencing failure is returned as corruption. An empty or
// absent journal replays nothing.
func Replay(dir string, afterSeq uint64, fn func(Record) error) (nextSeq uint64, err error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	nextSeq = afterSeq + 1
	var expect uint64 // next sequence we must see; 0 until the first record
	for i, seg := range segs {
		last := i == len(segs)-1
		stop, err := replaySegment(seg, last, afterSeq, &expect, fn)
		if err != nil {
			return 0, err
		}
		if stop {
			break
		}
	}
	if expect > nextSeq {
		nextSeq = expect
	}
	if expect != 0 && expect < nextSeq {
		// The journal ends below afterSeq: the checkpoint was durably
		// installed but the journal pages behind it died with the OS (an
		// fsync=never/interval power loss). Every surviving record is
		// already reflected in the checkpoint, so nothing is lost — but
		// appends must resume at afterSeq+1, not reuse covered sequence
		// numbers (the next recovery would skip them as replayed), and the
		// stale records would trip the continuity check across the gap.
		// Drop the fully-covered segments so the journal restarts cleanly.
		for _, seg := range segs {
			if err := os.Remove(seg.path); err != nil {
				return 0, fmt.Errorf("wal: dropping checkpoint-covered segment: %w", err)
			}
		}
		if err := syncDir(dir); err != nil {
			return 0, err
		}
	}
	return nextSeq, nil
}

// replaySegment scans one segment file. It updates *expect to the
// sequence following the last valid record and reports stop=true when a
// torn tail was truncated (no later segment may follow it).
func replaySegment(seg segment, last bool, afterSeq uint64, expect *uint64, fn func(Record) error) (stop bool, err error) {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return false, err
	}
	off := 0
	for off < len(data) {
		frameLen, payload, ok := readFrame(data[off:])
		if !ok {
			if !last {
				return false, fmt.Errorf("wal: corrupt frame at %s+%d (not the last segment)", seg.path, off)
			}
			// Torn tail: drop the bytes that never finished writing so
			// the next process start never re-reads them.
			if err := os.Truncate(seg.path, int64(off)); err != nil {
				return false, fmt.Errorf("wal: truncating torn tail of %s: %w", seg.path, err)
			}
			return true, nil
		}
		rec, err := decodePayload(payload)
		if err != nil {
			// The CRC matched, so these bytes were written in full; a
			// payload that still fails to decode is corruption (or a
			// version skew), never a torn write.
			return false, fmt.Errorf("wal: %s+%d: %w", seg.path, off, err)
		}
		if *expect == 0 {
			if rec.Seq > afterSeq+1 {
				return false, fmt.Errorf("wal: journal starts at seq %d, checkpoint covers through %d: gap", rec.Seq, afterSeq)
			}
		} else if rec.Seq != *expect {
			return false, fmt.Errorf("wal: %s+%d: seq %d, want %d", seg.path, off, rec.Seq, *expect)
		}
		*expect = rec.Seq + 1
		if rec.Seq > afterSeq {
			if err := fn(rec); err != nil {
				return false, err
			}
		}
		off += frameLen
	}
	return false, nil
}

// readFrame parses one frame from b, returning its total length and
// payload. ok=false means the frame is unreadable (short or CRC-bad) —
// the torn-tail shape.
func readFrame(b []byte) (frameLen int, payload []byte, ok bool) {
	if len(b) < frameHeader {
		return 0, nil, false
	}
	n := int(binary.LittleEndian.Uint32(b))
	crc := binary.LittleEndian.Uint32(b[4:])
	if n < recHeader || n > MaxRecordBytes || len(b) < frameHeader+n {
		return 0, nil, false
	}
	payload = b[frameHeader : frameHeader+n]
	if crc32.Checksum(payload, crcTable) != crc {
		return 0, nil, false
	}
	return frameHeader + n, payload, true
}

// decodePayload decodes a CRC-valid payload into a Record.
func decodePayload(p []byte) (Record, error) {
	seq := binary.LittleEndian.Uint64(p)
	typ := RecordType(p[8])
	body := p[recHeader:]
	switch typ {
	case RecordMutation:
		m, err := graph.DecodeMutationBinary(body)
		if err != nil {
			return Record{}, err
		}
		return Record{Seq: seq, Type: typ, Mut: m}, nil
	case RecordResize:
		if len(body) != 4 {
			return Record{}, fmt.Errorf("wal: resize body of %d bytes", len(body))
		}
		newK := int(int32(binary.LittleEndian.Uint32(body)))
		if newK < 1 {
			return Record{}, fmt.Errorf("wal: resize to k=%d", newK)
		}
		return Record{Seq: seq, Type: typ, NewK: newK}, nil
	}
	return Record{}, fmt.Errorf("wal: unknown record type %d", typ)
}

// syncDir fsyncs a directory so renames and creates within it are
// durable (best-effort on platforms where directories reject fsync).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return err
	}
	return nil
}
