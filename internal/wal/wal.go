// Package wal is the durability layer under the serving stack: a
// segmented, CRC-framed write-ahead journal of graph mutations and
// elastic resizes, plus atomically-installed checkpoint files. The
// serving layer (internal/serve) journals every accepted entry before
// applying it and periodically checkpoints its composed state; after a
// crash, recovery loads the latest valid checkpoint and replays the
// journal tail, so a maintained partitioning — the thing the paper argues
// is too expensive to recompute from scratch — survives process death.
//
// # Journal format
//
// A journal is a directory of segment files named wal-%016x.log, where
// the hex field is the sequence number of the first record the segment
// holds. Records are framed as
//
//	u32 payload length | u32 CRC-32C(payload) | payload
//	payload = u64 sequence | u8 record type | body
//
// with all integers little-endian. Sequence numbers are assigned by
// Append, start at 1, and increase by exactly 1 per record across segment
// boundaries — a gap or regression is corruption, not a torn write.
// Segments rotate once they pass Options.SegmentBytes, and every process
// start opens a fresh segment, so already-synced data is never rewritten.
//
// # Torn writes vs corruption
//
// Replay distinguishes the two failure shapes a log can have:
//
//   - A bad frame at the tail of the LAST segment — short header, short
//     payload, or CRC mismatch — is a torn write from the crash. Replay
//     truncates the segment at the last good frame and reports success:
//     those bytes were never acknowledged as durable.
//   - A bad frame anywhere else (an earlier segment, or a CRC-valid
//     payload that fails to decode, or a sequence gap) is real
//     mid-log corruption and fails recovery loudly. Silent truncation
//     there would drop acknowledged mutations.
//
// # Fsync policy
//
// SyncAlways fsyncs after every append (every acknowledged record
// survives OS death), SyncEvery fsyncs on a background interval (bounded
// loss window, near-SyncNever throughput), SyncNever leaves flushing to
// the OS (process crashes lose nothing — the page cache survives — but
// power loss can). Rotation and Close always sync regardless of policy.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// RecordType discriminates journal payloads.
type RecordType uint8

const (
	// RecordMutation is a graph.Mutation batch.
	RecordMutation RecordType = 1
	// RecordResize is an elastic partition-count change.
	RecordResize RecordType = 2
)

// Record is one journaled entry: a mutation batch or a resize.
type Record struct {
	Seq  uint64
	Type RecordType
	Mut  *graph.Mutation // RecordMutation
	NewK int             // RecordResize
}

// Policy selects when appended records are fsynced.
type Policy int

const (
	// SyncNever leaves flushing to the OS page cache.
	SyncNever Policy = iota
	// SyncEvery fsyncs on a background interval (Options.SyncInterval).
	SyncEvery
	// SyncAlways fsyncs after every append.
	SyncAlways
)

// String returns the flag spelling of p.
func (p Policy) String() string {
	switch p {
	case SyncNever:
		return "never"
	case SyncEvery:
		return "interval"
	case SyncAlways:
		return "always"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy parses the -fsync flag spellings never|interval|always.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "never":
		return SyncNever, nil
	case "interval":
		return SyncEvery, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want never|interval|always)", s)
}

// Options tunes a Journal.
type Options struct {
	// SegmentBytes rotates to a new segment file once the active one
	// passes this size. Default 4 MiB.
	SegmentBytes int64
	// Sync is the fsync policy. Default SyncNever.
	Sync Policy
	// SyncInterval is the background fsync period under SyncEvery.
	// Default 50ms.
	SyncInterval time.Duration
	// AppendsCounter, BytesCounter and SyncsCounter, when non-nil, are
	// incremented alongside the journal's internal counters so callers
	// (metrics.ServeCounters) see journal traffic without polling.
	AppendsCounter, BytesCounter, SyncsCounter *atomic.Int64
}

func (o *Options) normalize() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 50 * time.Millisecond
	}
}

const (
	frameHeader = 8 // u32 length + u32 crc
	recHeader   = 9 // u64 seq + u8 type
	// MaxRecordBytes bounds a single record; a length prefix past it is
	// treated as a bad frame rather than an allocation request.
	MaxRecordBytes = 1 << 28

	segPrefix = "wal-"
	segSuffix = ".log"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Journal is an append-only segmented log. Append is safe for concurrent
// use; in the serving layer the coordinator goroutine is the only writer.
type Journal struct {
	dir string
	opt Options

	mu       sync.Mutex
	f        *os.File
	segBytes int64
	nextSeq  uint64
	buf      []byte // frame staging buffer, reused across appends
	err      error  // sticky I/O error; all appends fail after it

	appends atomic.Int64
	bytes   atomic.Int64
	syncs   atomic.Int64

	stop chan struct{} // closes the background syncer
	done chan struct{}
}

// Open creates (if needed) the journal directory and starts a fresh
// segment whose first record will carry sequence number nextSeq. Existing
// segments are left in place for Replay and TruncateBelow; a leftover
// segment with the same starting sequence (a crash before any append) is
// overwritten — its records, had any been valid, would have advanced
// nextSeq past it during Replay.
func Open(dir string, nextSeq uint64, opt Options) (*Journal, error) {
	if nextSeq == 0 {
		return nil, fmt.Errorf("wal: sequence numbers start at 1")
	}
	opt.normalize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	j := &Journal{dir: dir, opt: opt, nextSeq: nextSeq}
	if err := j.openSegment(); err != nil {
		return nil, err
	}
	if opt.Sync == SyncEvery {
		j.stop = make(chan struct{})
		j.done = make(chan struct{})
		go j.syncLoop()
	}
	return j, nil
}

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix)
}

// openSegment opens the segment that will hold j.nextSeq, truncating any
// leftover file of the same name, and durably records the new directory
// entry. Callers hold j.mu (or own j exclusively).
func (j *Journal) openSegment() error {
	f, err := os.OpenFile(filepath.Join(j.dir, segName(j.nextSeq)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	j.f = f
	j.segBytes = 0
	return syncDir(j.dir)
}

// AppendMutation journals one mutation batch and returns its sequence
// number and encoded frame size.
func (j *Journal) AppendMutation(m *graph.Mutation) (seq uint64, n int, err error) {
	return j.append(RecordMutation, m, 0)
}

// AppendResize journals one elastic resize to newK partitions.
func (j *Journal) AppendResize(newK int) (seq uint64, n int, err error) {
	return j.append(RecordResize, nil, newK)
}

func (j *Journal) append(typ RecordType, m *graph.Mutation, newK int) (uint64, int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return 0, 0, j.err
	}
	seq := j.nextSeq

	// Stage the whole frame, then write it with one syscall: header
	// placeholder, payload header, body.
	buf := j.buf[:0]
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // length+crc, patched below
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = append(buf, byte(typ))
	switch typ {
	case RecordMutation:
		buf = graph.AppendMutationBinary(buf, m)
	case RecordResize:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(newK))
	default:
		return 0, 0, fmt.Errorf("wal: unknown record type %d", typ)
	}
	payload := buf[frameHeader:]
	if len(payload) > MaxRecordBytes {
		return 0, 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes", len(payload))
	}
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, crcTable))
	j.buf = buf

	if j.segBytes > 0 && j.segBytes+int64(len(buf)) > j.opt.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			j.err = err
			return 0, 0, err
		}
	}
	if _, err := j.f.Write(buf); err != nil {
		j.err = err
		return 0, 0, err
	}
	j.segBytes += int64(len(buf))
	j.nextSeq++
	if j.opt.Sync == SyncAlways {
		if err := j.syncLocked(); err != nil {
			j.err = err
			return 0, 0, err
		}
	}
	j.appends.Add(1)
	j.bytes.Add(int64(len(buf)))
	if j.opt.AppendsCounter != nil {
		j.opt.AppendsCounter.Add(1)
	}
	if j.opt.BytesCounter != nil {
		j.opt.BytesCounter.Add(int64(len(buf)))
	}
	return seq, len(buf), nil
}

// rotateLocked seals the active segment (sync + close) and opens the next.
func (j *Journal) rotateLocked() error {
	if err := j.syncLocked(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	return j.openSegment()
}

func (j *Journal) syncLocked() error {
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.syncs.Add(1)
	if j.opt.SyncsCounter != nil {
		j.opt.SyncsCounter.Add(1)
	}
	return nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if err := j.syncLocked(); err != nil {
		j.err = err
	}
	return j.err
}

func (j *Journal) syncLoop() {
	defer close(j.done)
	t := time.NewTicker(j.opt.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			j.mu.Lock()
			if j.err == nil && j.segBytes > 0 {
				if err := j.syncLocked(); err != nil {
					j.err = err
				}
			}
			j.mu.Unlock()
		case <-j.stop:
			return
		}
	}
}

// Close syncs and closes the active segment and stops the background
// syncer. The journal is unusable afterwards.
func (j *Journal) Close() error {
	if j.stop != nil {
		close(j.stop)
		<-j.done
		j.stop = nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return j.err
	}
	err := j.err
	if err == nil {
		err = j.syncLocked()
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	if j.err == nil {
		j.err = fmt.Errorf("wal: journal closed")
	}
	return err
}

// NextSeq returns the sequence number the next append will carry.
func (j *Journal) NextSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq
}

// Appends, AppendedBytes and Syncs report lifetime journal traffic.
func (j *Journal) Appends() int64       { return j.appends.Load() }
func (j *Journal) AppendedBytes() int64 { return j.bytes.Load() }
func (j *Journal) Syncs() int64         { return j.syncs.Load() }

// TruncateBelow deletes every sealed segment whose records all have
// sequence numbers <= seq — the space-reclamation step after a checkpoint
// at seq. The active segment is never deleted. Returns the number of
// segments removed.
func (j *Journal) TruncateBelow(seq uint64) (int, error) {
	j.mu.Lock()
	active := j.nextSeq // segments starting at or after this are unsealed
	j.mu.Unlock()
	segs, err := listSegments(j.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i := 0; i+1 < len(segs); i++ {
		// Segment i covers [segs[i].first, segs[i+1].first-1].
		if segs[i+1].first > seq+1 || segs[i].first >= active {
			break
		}
		if err := os.Remove(segs[i].path); err != nil {
			return removed, err
		}
		removed++
	}
	if removed > 0 {
		if err := syncDir(j.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

type segment struct {
	first uint64
	path  string
}

// scanSeqFiles lists the files in dir named prefix+%016x+suffix, sorted
// ascending by the parsed sequence field — the shared directory scan
// behind journal segments and checkpoints. Files that do not match the
// naming scheme (including leftover temp files) are ignored; an absent
// directory is an empty listing.
func scanSeqFiles(dir, prefix, suffix string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []segment
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), "%016x", &seq); err != nil {
			continue
		}
		out = append(out, segment{first: seq, path: filepath.Join(dir, name)})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].first < out[k].first })
	return out, nil
}

// listSegments returns the journal's segment files sorted by first
// sequence number.
func listSegments(dir string) ([]segment, error) {
	return scanSeqFiles(dir, segPrefix, segSuffix)
}

// Replay scans the journal in dir in sequence order, invoking fn for
// every record with Seq > afterSeq, and returns the sequence number the
// next append should carry. A torn tail — a bad frame at the end of the
// last segment — is truncated in place and tolerated; any other framing,
// decoding or sequencing failure is returned as corruption. An empty or
// absent journal replays nothing.
func Replay(dir string, afterSeq uint64, fn func(Record) error) (nextSeq uint64, err error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	nextSeq = afterSeq + 1
	var expect uint64 // next sequence we must see; 0 until the first record
	for i, seg := range segs {
		last := i == len(segs)-1
		stop, err := replaySegment(seg, last, afterSeq, &expect, fn)
		if err != nil {
			return 0, err
		}
		if stop {
			break
		}
	}
	if expect > nextSeq {
		nextSeq = expect
	}
	if expect != 0 && expect < nextSeq {
		// The journal ends below afterSeq: the checkpoint was durably
		// installed but the journal pages behind it died with the OS (an
		// fsync=never/interval power loss). Every surviving record is
		// already reflected in the checkpoint, so nothing is lost — but
		// appends must resume at afterSeq+1, not reuse covered sequence
		// numbers (the next recovery would skip them as replayed), and the
		// stale records would trip the continuity check across the gap.
		// Drop the fully-covered segments so the journal restarts cleanly.
		for _, seg := range segs {
			if err := os.Remove(seg.path); err != nil {
				return 0, fmt.Errorf("wal: dropping checkpoint-covered segment: %w", err)
			}
		}
		if err := syncDir(dir); err != nil {
			return 0, err
		}
	}
	return nextSeq, nil
}

// replaySegment scans one segment file. It updates *expect to the
// sequence following the last valid record and reports stop=true when a
// torn tail was truncated (no later segment may follow it).
func replaySegment(seg segment, last bool, afterSeq uint64, expect *uint64, fn func(Record) error) (stop bool, err error) {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return false, err
	}
	off := 0
	for off < len(data) {
		frameLen, payload, ok := readFrame(data[off:])
		if !ok {
			if !last {
				return false, fmt.Errorf("wal: corrupt frame at %s+%d (not the last segment)", seg.path, off)
			}
			// Torn tail: drop the bytes that never finished writing so
			// the next process start never re-reads them.
			if err := os.Truncate(seg.path, int64(off)); err != nil {
				return false, fmt.Errorf("wal: truncating torn tail of %s: %w", seg.path, err)
			}
			return true, nil
		}
		rec, err := decodePayload(payload)
		if err != nil {
			// The CRC matched, so these bytes were written in full; a
			// payload that still fails to decode is corruption (or a
			// version skew), never a torn write.
			return false, fmt.Errorf("wal: %s+%d: %w", seg.path, off, err)
		}
		if *expect == 0 {
			if rec.Seq > afterSeq+1 {
				return false, fmt.Errorf("wal: journal starts at seq %d, checkpoint covers through %d: gap", rec.Seq, afterSeq)
			}
		} else if rec.Seq != *expect {
			return false, fmt.Errorf("wal: %s+%d: seq %d, want %d", seg.path, off, rec.Seq, *expect)
		}
		*expect = rec.Seq + 1
		if rec.Seq > afterSeq {
			if err := fn(rec); err != nil {
				return false, err
			}
		}
		off += frameLen
	}
	return false, nil
}

// readFrame parses one frame from b, returning its total length and
// payload. ok=false means the frame is unreadable (short or CRC-bad) —
// the torn-tail shape.
func readFrame(b []byte) (frameLen int, payload []byte, ok bool) {
	if len(b) < frameHeader {
		return 0, nil, false
	}
	n := int(binary.LittleEndian.Uint32(b))
	crc := binary.LittleEndian.Uint32(b[4:])
	if n < recHeader || n > MaxRecordBytes || len(b) < frameHeader+n {
		return 0, nil, false
	}
	payload = b[frameHeader : frameHeader+n]
	if crc32.Checksum(payload, crcTable) != crc {
		return 0, nil, false
	}
	return frameHeader + n, payload, true
}

// decodePayload decodes a CRC-valid payload into a Record.
func decodePayload(p []byte) (Record, error) {
	seq := binary.LittleEndian.Uint64(p)
	typ := RecordType(p[8])
	body := p[recHeader:]
	switch typ {
	case RecordMutation:
		m, err := graph.DecodeMutationBinary(body)
		if err != nil {
			return Record{}, err
		}
		return Record{Seq: seq, Type: typ, Mut: m}, nil
	case RecordResize:
		if len(body) != 4 {
			return Record{}, fmt.Errorf("wal: resize body of %d bytes", len(body))
		}
		newK := int(int32(binary.LittleEndian.Uint32(body)))
		if newK < 1 {
			return Record{}, fmt.Errorf("wal: resize to k=%d", newK)
		}
		return Record{Seq: seq, Type: typ, NewK: newK}, nil
	}
	return Record{}, fmt.Errorf("wal: unknown record type %d", typ)
}

// syncDir fsyncs a directory so renames and creates within it are
// durable (best-effort on platforms where directories reject fsync).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return err
	}
	return nil
}
