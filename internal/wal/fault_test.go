package wal

// Fault-injection tests for the storage fail-stop contract: a failed or
// short journal write, or a failed fsync, must (a) never acknowledge the
// affected records, (b) poison the journal so every later append fails
// fast, and (c) leave the on-disk segments recoverable — Replay yields
// exactly the records acknowledged before the fault (plus, for fsync
// faults only, written-but-unsynced records that survived in the page
// cache: at-least-once for the unacknowledged, never loss for the
// acknowledged).

import (
	"errors"
	"io"
	"os"
	"testing"

	"repro/internal/graph"
)

func faultMut(step int) *graph.Mutation {
	return &graph.Mutation{NewEdges: []graph.WeightedEdgeRecord{
		{U: graph.VertexID(step), V: graph.VertexID(step + 1), Weight: 2}}}
}

// replayCount replays dir from the start and returns the records seen.
func replayCount(t *testing.T, dir string) []Record {
	t.Helper()
	var recs []Record
	if _, err := Replay(dir, 0, func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs
}

func TestWriteFaultPoisonsJournalAndLosesNothingAcked(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		if _, _, err := j.AppendMutation(faultMut(step)); err != nil {
			t.Fatal(err)
		}
	}

	boom := errors.New("injected: write fault")
	restore := InjectFaults(func(*os.File, []byte) (int, error) { return 0, boom }, nil)
	if _, _, err := j.AppendMutation(faultMut(3)); !errors.Is(err, boom) {
		t.Fatalf("faulted append err = %v, want injected fault", err)
	}
	restore()

	// The poison is sticky even though the seam is healthy again: the
	// segment tail is in an unknown state, so no later record may be
	// framed after it.
	if err := j.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want the injected fault", err)
	}
	if _, _, err := j.AppendMutation(faultMut(4)); !errors.Is(err, boom) {
		t.Fatalf("append after restore err = %v, want sticky poison", err)
	}
	j.Close()

	// Recovery sees exactly the acknowledged records; the faulted one
	// wrote zero bytes and must be absent.
	recs := replayCount(t, dir)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want the 3 acknowledged", len(recs))
	}

	// A fresh journal over the same dir (the Close+Open recovery path)
	// appends cleanly past the fault.
	j2, err := Open(dir, recs[len(recs)-1].Seq+1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := j2.AppendMutation(faultMut(5)); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(replayCount(t, dir)); got != 4 {
		t.Fatalf("replayed %d records after reopen, want 4", got)
	}
}

func TestShortWritePoisonsJournalAndTornTailIsDropped(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := j.AppendMutation(faultMut(0)); err != nil {
		t.Fatal(err)
	}

	// Short-count the next write but actually land the torn prefix on
	// disk, the way a full disk or a crashed controller would.
	restore := InjectFaults(func(f *os.File, b []byte) (int, error) {
		return f.Write(b[:len(b)-3])
	}, nil)
	if _, _, err := j.AppendMutation(faultMut(1)); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short-counted append err = %v, want io.ErrShortWrite", err)
	}
	restore()
	if err := j.Err(); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("Err() = %v, want io.ErrShortWrite", err)
	}
	if _, _, err := j.AppendMutation(faultMut(2)); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("append after short write err = %v, want sticky poison", err)
	}
	j.Close()

	// The torn frame fails its CRC/length check and is truncated away;
	// only the acknowledged record replays.
	recs := replayCount(t, dir)
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("replayed %+v, want exactly the 1 acknowledged record", recs)
	}
}

func TestFsyncFaultUnderSyncAlwaysNeverAcknowledges(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, 1, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 2; step++ {
		if _, _, err := j.AppendMutation(faultMut(step)); err != nil {
			t.Fatal(err)
		}
	}

	// Fail exactly one fsync: fail-stop means one storage fault is enough
	// to poison the journal for good, even though the device "recovers".
	boom := errors.New("injected: fsync fault")
	calls := 0
	restore := InjectFaults(nil, func(f *os.File) error {
		calls++
		if calls == 1 {
			return boom
		}
		return f.Sync()
	})
	if _, _, err := j.AppendMutation(faultMut(2)); !errors.Is(err, boom) {
		t.Fatalf("append over failed fsync err = %v, want injected fault", err)
	}
	restore()
	if err := j.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want the injected fault", err)
	}
	if _, _, err := j.AppendMutation(faultMut(3)); !errors.Is(err, boom) {
		t.Fatalf("append after fsync fault err = %v, want sticky poison", err)
	}
	j.Close()

	// The written-but-unsynced record may survive in the page cache (we
	// did not crash the OS), so replay sees 2 or 3 records — but the 2
	// acknowledged ones must both be there, in order.
	recs := replayCount(t, dir)
	if len(recs) < 2 || len(recs) > 3 {
		t.Fatalf("replayed %d records, want 2 acknowledged (+ at most 1 unsynced)", len(recs))
	}
	for i := 0; i < 2; i++ {
		if recs[i].Seq != uint64(i+1) || recs[i].Type != RecordMutation {
			t.Fatalf("record %d = %+v, want acknowledged mutation seq %d", i, recs[i], i+1)
		}
	}
}

func TestFsyncFaultFailsForever(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, 1, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected: device gone")
	restore := InjectFaults(nil, func(*os.File) error { return boom })
	defer restore()
	for step := 0; step < 4; step++ {
		if _, _, err := j.AppendMutation(faultMut(step)); !errors.Is(err, boom) {
			t.Fatalf("append %d err = %v, want injected fault every time", step, err)
		}
	}
	if j.Appends() != 0 {
		t.Fatalf("Appends() = %d after unacknowledged writes, want 0", j.Appends())
	}
	restore()
	j.Close()
}
