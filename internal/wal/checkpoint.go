package wal

// Checkpoint files: ckpt-%016x.ckpt in a directory, where the hex field
// is the journal sequence number the checkpoint covers (every record
// with Seq <= it is reflected in the payload). A checkpoint is written
// to a temp file, fsynced, then renamed into place and the directory
// fsynced — so a crash mid-write leaves either the old set of
// checkpoints or the old set plus one complete new file, never a
// half-written one that parses. The payload is opaque to this package
// (internal/serve encodes its composed store state); integrity is a
// trailing CRC-32C over the payload, verified on read.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

const (
	ckptPrefix = "ckpt-"
	ckptSuffix = ".ckpt"
	ckptMagic  = 0x53504b31 // "SPK1"
)

// ErrNoCheckpoint is returned by LatestCheckpoint when the directory
// holds no readable checkpoint.
var ErrNoCheckpoint = fmt.Errorf("wal: no checkpoint")

func ckptName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", ckptPrefix, seq, ckptSuffix)
}

// WriteCheckpoint atomically installs a checkpoint covering journal
// sequence seq with the given payload.
func WriteCheckpoint(dir string, seq uint64, payload []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ckptPrefix+"*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], ckptMagic)
	binary.LittleEndian.PutUint64(hdr[4:], seq)
	binary.LittleEndian.PutUint32(hdr[12:], crc32.Checksum(payload, crcTable))
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, ckptName(seq))); err != nil {
		return err
	}
	return syncDir(dir)
}

// ReadCheckpoint loads and verifies the checkpoint covering seq,
// returning its payload.
func ReadCheckpoint(dir string, seq uint64) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(dir, ckptName(seq)))
	if err != nil {
		return nil, err
	}
	if len(data) < 16 {
		return nil, fmt.Errorf("wal: checkpoint %d truncated at %d bytes", seq, len(data))
	}
	if binary.LittleEndian.Uint32(data) != ckptMagic {
		return nil, fmt.Errorf("wal: checkpoint %d has bad magic", seq)
	}
	if got := binary.LittleEndian.Uint64(data[4:]); got != seq {
		return nil, fmt.Errorf("wal: checkpoint file for seq %d declares seq %d", seq, got)
	}
	payload := data[16:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[12:]) {
		return nil, fmt.Errorf("wal: checkpoint %d fails CRC", seq)
	}
	return payload, nil
}

// Checkpoints lists the checkpoint sequence numbers present in dir,
// ascending. Files that do not match the naming scheme (including
// leftover temp files) are ignored.
func Checkpoints(dir string) ([]uint64, error) {
	files, err := scanSeqFiles(dir, ckptPrefix, ckptSuffix)
	if err != nil {
		return nil, err
	}
	seqs := make([]uint64, len(files))
	for i, f := range files {
		seqs[i] = f.first
	}
	return seqs, nil
}

// LatestCheckpoint loads the newest checkpoint that verifies, falling
// back to older ones when the newest is unreadable (a crash can race the
// retention pass, never the install — but a damaged disk can). Returns
// ErrNoCheckpoint when none exists; a corruption error when checkpoints
// exist but none verifies.
func LatestCheckpoint(dir string) (seq uint64, payload []byte, err error) {
	seqs, err := Checkpoints(dir)
	if err != nil {
		return 0, nil, err
	}
	if len(seqs) == 0 {
		return 0, nil, ErrNoCheckpoint
	}
	var lastErr error
	for i := len(seqs) - 1; i >= 0; i-- {
		payload, err := ReadCheckpoint(dir, seqs[i])
		if err == nil {
			return seqs[i], payload, nil
		}
		lastErr = err
	}
	return 0, nil, fmt.Errorf("wal: no checkpoint verifies: %w", lastErr)
}

// PruneCheckpoints deletes all but the newest keep checkpoints and
// returns the sequence number of the oldest retained one — the bound the
// journal may be truncated below. Retaining more than one checkpoint
// keeps recovery possible even if the newest file is lost.
func PruneCheckpoints(dir string, keep int) (oldestKept uint64, err error) {
	if keep < 1 {
		keep = 1
	}
	seqs, err := Checkpoints(dir)
	if err != nil {
		return 0, err
	}
	if len(seqs) == 0 {
		return 0, ErrNoCheckpoint
	}
	cut := 0
	if len(seqs) > keep {
		cut = len(seqs) - keep
	}
	for _, seq := range seqs[:cut] {
		if err := os.Remove(filepath.Join(dir, ckptName(seq))); err != nil {
			return 0, err
		}
	}
	if cut > 0 {
		if err := syncDir(dir); err != nil {
			return 0, err
		}
	}
	return seqs[cut], nil
}
