package wal

// Replication read path: a leader streams its journal to followers in the
// exact on-disk frame format (u32 len | u32 crc | payload), so the wire
// needs no second encoding and the follower can verify every frame with
// the same CRC the journal uses. ReadFramesAfter is the leader-side scan
// (safe to run concurrently with appends — sealed segments are complete
// by construction, and a torn frame at the active tail is an in-progress
// write, not corruption); DecodeRecords is the follower-side iterator
// over a received chunk, where a bad frame IS corruption because the
// transport frame carrying it was already integrity-checked.

import (
	"encoding/binary"
	"fmt"
	"os"
)

// ReadFramesAfter scans the journal in dir and returns raw, CRC-verified
// frames for records with Seq > afterSeq, concatenated in sequence order,
// stopping once at least maxBytes have been collected (the cut is always
// on a frame boundary; a single oversized frame is still returned whole).
// first and last are the sequence bounds of the returned frames, 0/0 when
// none are available yet. A short or CRC-bad frame at the tail of the
// last segment ends the scan silently — under a live appender that is a
// write racing the read, and the next poll picks it up; anywhere else it
// is corruption. first > afterSeq+1 means the journal no longer holds
// afterSeq+1 (truncated below the caller's position): the caller must
// re-bootstrap from a checkpoint.
func ReadFramesAfter(dir string, afterSeq uint64, maxBytes int) (frames []byte, first, last uint64, err error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, 0, 0, err
	}
	for i, seg := range segs {
		if i+1 < len(segs) && segs[i+1].first <= afterSeq+1 {
			continue // every record in seg is <= afterSeq
		}
		lastSeg := i == len(segs)-1
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, 0, 0, err
		}
		off := 0
		for off < len(data) {
			frameLen, payload, ok := readFrame(data[off:])
			if !ok {
				if !lastSeg {
					return nil, 0, 0, fmt.Errorf("wal: corrupt frame at %s+%d (not the last segment)", seg.path, off)
				}
				return frames, first, last, nil
			}
			seq := binary.LittleEndian.Uint64(payload)
			if seq > afterSeq {
				if last != 0 && seq != last+1 {
					return nil, 0, 0, fmt.Errorf("wal: %s+%d: seq %d, want %d", seg.path, off, seq, last+1)
				}
				if first == 0 {
					first = seq
				}
				last = seq
				frames = append(frames, data[off:off+frameLen]...)
				if len(frames) >= maxBytes {
					return frames, first, last, nil
				}
			}
			off += frameLen
		}
	}
	return frames, first, last, nil
}

// DecodeRecords iterates the records in a buffer of concatenated journal
// frames (the ReadFramesAfter wire format), invoking fn for each in
// order. Unlike Replay there is no torn-tail tolerance: the buffer
// arrived inside an integrity-checked transport frame, so a frame that
// fails to parse means corruption (or a version skew), and trailing
// garbage is an error rather than a crash artifact.
func DecodeRecords(b []byte, fn func(Record) error) error {
	off := 0
	for off < len(b) {
		frameLen, payload, ok := readFrame(b[off:])
		if !ok {
			return fmt.Errorf("wal: bad journal frame at offset %d of %d-byte chunk", off, len(b))
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
		off += frameLen
	}
	return nil
}
