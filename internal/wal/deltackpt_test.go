package wal

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDeltaCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDeltaCheckpoint(dir, 12, 8, []byte("delta payload")); err != nil {
		t.Fatal(err)
	}
	prev, payload, err := ReadDeltaCheckpoint(dir, 12)
	if err != nil {
		t.Fatal(err)
	}
	if prev != 8 || string(payload) != "delta payload" {
		t.Fatalf("read prev=%d payload=%q", prev, payload)
	}
	seqs, err := DeltaCheckpoints(dir)
	if err != nil || len(seqs) != 1 || seqs[0] != 12 {
		t.Fatalf("DeltaCheckpoints = %v, %v", seqs, err)
	}
	// An empty payload is legal (a quiet interval still advances the tip).
	if err := WriteDeltaCheckpoint(dir, 20, 12, nil); err != nil {
		t.Fatal(err)
	}
	if _, payload, err := ReadDeltaCheckpoint(dir, 20); err != nil || len(payload) != 0 {
		t.Fatalf("empty delta = %q, %v", payload, err)
	}
}

func TestDeltaCheckpointRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDeltaCheckpoint(dir, 5, 2, []byte("payload bytes here")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, dckpName(5))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flip := func(mutate func([]byte)) error {
		cp := append([]byte(nil), data...)
		mutate(cp)
		if err := os.WriteFile(path, cp, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := ReadDeltaCheckpoint(dir, 5)
		return err
	}
	if err := flip(func(b []byte) { b[0] ^= 0xff }); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := flip(func(b []byte) { b[4] ^= 0x01 }); err == nil {
		t.Fatal("mismatched seq accepted")
	}
	if err := flip(func(b []byte) { b[len(b)-1] ^= 0x01 }); err == nil {
		t.Fatal("payload corruption passed CRC")
	}
	if err := os.WriteFile(path, data[:dckpHdr-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadDeltaCheckpoint(dir, 5); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestLatestChainWalksAndStopsAtBrokenLink(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, 10, []byte("base")); err != nil {
		t.Fatal(err)
	}
	for _, link := range []struct{ seq, prev uint64 }{{14, 10}, {19, 14}, {25, 19}} {
		if err := WriteDeltaCheckpoint(dir, link.seq, link.prev, []byte{byte(link.seq)}); err != nil {
			t.Fatal(err)
		}
	}
	// A stray delta that chains from nothing present must be ignored.
	if err := WriteDeltaCheckpoint(dir, 30, 27, []byte("orphan")); err != nil {
		t.Fatal(err)
	}

	baseSeq, base, chain, err := LatestChain(dir)
	if err != nil {
		t.Fatal(err)
	}
	if baseSeq != 10 || string(base) != "base" {
		t.Fatalf("base %d %q", baseSeq, base)
	}
	if len(chain) != 3 || chain[0].Seq != 14 || chain[1].Seq != 19 || chain[2].Seq != 25 {
		t.Fatalf("chain %+v", chain)
	}

	// Corrupt the middle link: the chain must end at the last good link,
	// not error out.
	if err := os.WriteFile(filepath.Join(dir, dckpName(19)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, chain, err = LatestChain(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 || chain[0].Seq != 14 {
		t.Fatalf("chain after mid-link corruption = %+v, want just seq 14", chain)
	}
}

// A rebase onto a newer full checkpoint supersedes the old chain: links
// at or below the new base prune away, and the walk starts fresh.
func TestPruneDeltaCheckpointsBelow(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, 10, []byte("old base")); err != nil {
		t.Fatal(err)
	}
	for _, link := range []struct{ seq, prev uint64 }{{14, 10}, {19, 14}} {
		if err := WriteDeltaCheckpoint(dir, link.seq, link.prev, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteCheckpoint(dir, 19, []byte("new base")); err != nil {
		t.Fatal(err)
	}
	if err := PruneDeltaCheckpointsBelow(dir, 19); err != nil {
		t.Fatal(err)
	}
	seqs, err := DeltaCheckpoints(dir)
	if err != nil || len(seqs) != 0 {
		t.Fatalf("after prune: %v, %v", seqs, err)
	}
	baseSeq, base, chain, err := LatestChain(dir)
	if err != nil {
		t.Fatal(err)
	}
	if baseSeq != 19 || string(base) != "new base" || len(chain) != 0 {
		t.Fatalf("after rebase: base %d %q chain %+v", baseSeq, base, chain)
	}
}
