package cluster

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestBalancedRangesInvariants(t *testing.T) {
	g := gen.WattsStrogatz(1000, 8, 0.2, 5)
	w := graph.Convert(g)
	for _, shards := range []int{1, 2, 3, 7, 16} {
		bounds := BalancedRanges(w, shards)
		if len(bounds) != shards+1 || bounds[0] != 0 || bounds[shards] != w.NumVertices() {
			t.Fatalf("shards=%d: bounds %v", shards, bounds)
		}
		var maxLoad, total int64
		for i := 0; i < shards; i++ {
			if bounds[i+1] <= bounds[i] {
				t.Fatalf("shards=%d: empty or inverted range %d: %v", shards, i, bounds)
			}
			var load int64
			for v := bounds[i]; v < bounds[i+1]; v++ {
				load += w.WeightedDegree(graph.VertexID(v)) + 1
			}
			total += load
			if load > maxLoad {
				maxLoad = load
			}
		}
		// Balance: the heaviest range stays within 2x of the ideal share
		// (WS degree is near-uniform, so this is generous).
		if ideal := float64(total) / float64(shards); float64(maxLoad) > 2*ideal+1 {
			t.Fatalf("shards=%d: max range load %d vs ideal %.0f", shards, maxLoad, ideal)
		}
	}
}

func TestBalancedRangesDegenerate(t *testing.T) {
	w := graph.NewWeighted(3) // no edges: split by vertex count alone
	bounds := BalancedRanges(w, 3)
	for i, want := range []int{0, 1, 2, 3} {
		if bounds[i] != want {
			t.Fatalf("bounds = %v", bounds)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shards > n accepted")
		}
	}()
	BalancedRanges(w, 4)
}
