package cluster

import (
	"math"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/gen"
	"repro/internal/pregel"
)

func mkStats(edges, local, remote []int64) pregel.SuperstepStats {
	return pregel.SuperstepStats{
		ComputeEdges:   edges,
		SentLocal:      local,
		SentRemote:     remote,
		Received:       make([]int64, len(edges)),
		ReceivedRemote: make([]int64, len(edges)),
	}
}

func TestSuperstepTiming(t *testing.T) {
	m := CostModel{ComputePerEdge: 1, LocalMsg: 10, RemoteMsg: 100, Barrier: 0}
	st := mkStats([]int64{5, 0}, []int64{1, 0}, []int64{0, 2})
	tim := m.Superstep(st)
	// worker0: 5*1 + 1*10 = 15; worker1: 2*100 = 200.
	if tim.PerWorker[0] != 15 || tim.PerWorker[1] != 200 {
		t.Fatalf("per-worker=%v", tim.PerWorker)
	}
	if tim.Max != 200 || tim.Min != 15 {
		t.Fatalf("max=%v min=%v", tim.Max, tim.Min)
	}
	if tim.Mean != (15+200)/2 {
		t.Fatalf("mean=%v", tim.Mean)
	}
}

func TestIdleFraction(t *testing.T) {
	tim := Timing{Mean: 50, Max: 100}
	if got := tim.IdleFraction(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("idle=%v, want 0.5", got)
	}
	if (Timing{}).IdleFraction() != 0 {
		t.Fatal("zero timing idle nonzero")
	}
}

func TestBalancedNoIdle(t *testing.T) {
	m := CostModel{ComputePerEdge: 1, LocalMsg: 1, RemoteMsg: 1}
	st := mkStats([]int64{10, 10}, []int64{5, 5}, []int64{5, 5})
	tim := m.Superstep(st)
	if tim.IdleFraction() != 0 {
		t.Fatalf("balanced idle=%v", tim.IdleFraction())
	}
}

func TestTotalAddsBarrier(t *testing.T) {
	m := CostModel{ComputePerEdge: 1, Barrier: 1000}
	stats := []pregel.SuperstepStats{
		mkStats([]int64{10}, []int64{0}, []int64{0}),
		mkStats([]int64{20}, []int64{0}, []int64{0}),
	}
	if got := m.Total(stats); got != 1000+10+1000+20 {
		t.Fatalf("total=%v", got)
	}
}

func TestSummarize(t *testing.T) {
	m := CostModel{ComputePerEdge: 1}
	stats := []pregel.SuperstepStats{
		mkStats([]int64{10, 20}, []int64{0, 0}, []int64{0, 0}),
		mkStats([]int64{10, 20}, []int64{0, 0}, []int64{0, 0}),
		mkStats([]int64{0, 0}, []int64{0, 0}, []int64{0, 0}), // skipped: no work
	}
	s := m.Summarize(stats)
	if s.Max != 20 || s.Min != 10 || s.Mean != 15 {
		t.Fatalf("summary=%+v", s)
	}
	if s.MaxStd != 0 {
		t.Fatalf("identical supersteps give std=%v", s.MaxStd)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := (CostModel{}).Summarize(nil)
	if s.Mean != 0 || s.AvgIdleFraction != 0 {
		t.Fatalf("empty summary=%+v", s)
	}
}

// End-to-end: a locality-aware placement must yield lower simulated
// runtime and lower idle fraction than hash placement — the Fig. 9 /
// Table IV effect.
func TestPartitioningImprovesSimulatedRuntime(t *testing.T) {
	g, truth := gen.PlantedPartition(3000, 8, 12, 2, 21)
	const workers = 8
	model := Default()

	_, hashRes, err := apps.PageRank(g, 10, apps.RunConfig{NumWorkers: workers, Placement: apps.HashPlacement(workers)})
	if err != nil {
		t.Fatal(err)
	}
	_, partRes, err := apps.PageRank(g, 10, apps.RunConfig{NumWorkers: workers, Placement: apps.PlacementFromLabels(truth, workers)})
	if err != nil {
		t.Fatal(err)
	}
	hashTime := model.Total(hashRes.Stats)
	partTime := model.Total(partRes.Stats)
	if partTime >= hashTime {
		t.Fatalf("partitioned runtime %v not better than hash %v", partTime, hashTime)
	}
	t.Logf("hash=%v partitioned=%v improvement=%.0f%%", hashTime, partTime,
		100*(1-float64(partTime)/float64(hashTime)))
}

func TestDefaultModelOrdering(t *testing.T) {
	m := Default()
	if !(m.RemoteMsg > m.LocalMsg && m.LocalMsg >= m.ComputePerEdge) {
		t.Fatalf("cost ordering broken: %+v", m)
	}
	if m.Barrier < time.Microsecond {
		t.Fatal("barrier suspiciously small")
	}
}
