package cluster

import (
	"time"

	"repro/internal/graph"
)

// MigrationVolume measures the physical cost of moving from labeling
// `before` to labeling `after` on w: the number of vertices whose partition
// changed and the weighted degree they drag with them. The weighted-degree
// term is the paper's network-load proxy — a migrating vertex re-homes one
// message channel per unit of edge weight, so savings in this quantity are
// exactly what Fig. 7's incremental experiments report against scratch
// repartitioning. Vertices present only in `after` (appended by mutation
// batches) are placements, not migrations, and are not counted.
func MigrationVolume(w *graph.Weighted, before, after []int32) (vertices, weight int64) {
	n := len(before)
	if len(after) < n {
		n = len(after)
	}
	for v := 0; v < n; v++ {
		if before[v] != after[v] {
			vertices++
			weight += w.WeightedDegree(graph.VertexID(v))
		}
	}
	return vertices, weight
}

// MigrationTime prices a migration under the cost model: every moved vertex
// pays a fixed re-registration cost plus remote transfer of its adjacency
// (each unit of weighted degree crosses the wire once, at the remote
// message rate, and is ingested at the receive rates). This is the traffic
// an elastic k→k′ change or a restabilization merge injects into the
// cluster, and what makes the paper's partial migration (Eq. 11's n/(k+n)
// fraction) cheaper than a from-scratch reshuffle of nearly every vertex.
func (m CostModel) MigrationTime(vertices, weight int64) time.Duration {
	perUnit := m.RemoteMsg + m.RecvMsg + m.RecvRemoteMsg
	return time.Duration(vertices)*m.VertexTransfer + time.Duration(weight)*perUnit
}
