package cluster

import "repro/internal/graph"

// BalancedRanges splits the vertex space [0, n) into `shards` contiguous
// ranges of roughly equal weighted degree, returning the boundaries as a
// slice of length shards+1 (bounds[i] .. bounds[i+1] is shard i's range,
// bounds[0] = 0, bounds[shards] = n). Every shard receives at least one
// vertex; shards must not exceed n.
//
// Weighted degree is the same per-vertex load measure as b(l) (Eq. 6), so
// a range split balanced by it equalizes the edge-scan work a data-parallel
// maintainer (internal/serve's sharded store) performs per shard; a +1 per
// vertex keeps degree-0 tails from collapsing into one range.
func BalancedRanges(w *graph.Weighted, shards int) []int {
	n := w.NumVertices()
	if shards < 1 || shards > n {
		panic("cluster: BalancedRanges needs 1 <= shards <= vertices")
	}
	total := 2*w.TotalWeight() + int64(n)
	bounds := make([]int, shards+1)
	bounds[shards] = n
	var acc int64
	b := 1
	for v := 0; v < n && b < shards; v++ {
		acc += w.WeightedDegree(graph.VertexID(v)) + 1
		// Cut after v once shard b-1 reached its proportional share, but
		// never so late that a remaining shard would go empty.
		if acc*int64(shards) >= total*int64(b) || n-(v+1) == shards-b {
			bounds[b] = v + 1
			b++
		}
	}
	for ; b < shards; b++ {
		bounds[b] = bounds[b-1] // unreachable with the guard above; safety
	}
	return bounds
}
