// Package cluster provides the simulated-cluster cost model that stands in
// for the paper's Hadoop/AWS deployments when reproducing the
// application-performance experiments (§V-F, Fig. 9 and Table IV).
//
// The model captures the two effects those experiments measure:
//
//  1. network: messages crossing worker boundaries cost far more than
//     local ones, so a partitioning with fewer cut edges lowers per-worker
//     communication time (Fig. 9's runtime improvements);
//  2. synchronization: a superstep ends when the slowest worker finishes,
//     so unbalanced load makes fast workers idle at the barrier (Table IV's
//     Max vs. Mean gap: "with hash partitioning the workers are idling on
//     average for 31% of the superstep").
//
// Per-worker superstep time is
//
//	t_w = ComputePerEdge·edges_w + LocalMsg·local_w + RemoteMsg·remote_w
//	    + RecvMsg·received_w + RecvRemoteMsg·receivedRemote_w
//
// and the superstep completes at Barrier + max_w t_w. The constants default
// to commodity-cluster ratios (remote ≈ 25× local); the experiments only
// depend on the ordering remote ≫ local ≥ compute, not on absolute values.
package cluster

import (
	"fmt"
	"math"
	"time"

	"repro/internal/pregel"
)

// CostModel prices a superstep's work.
type CostModel struct {
	// ComputePerEdge is charged per edge scanned by a vertex program.
	ComputePerEdge time.Duration
	// LocalMsg is charged to the sender per same-worker message.
	LocalMsg time.Duration
	// RemoteMsg is charged to the sender per cross-worker message
	// (serialization + network + remote handling).
	RemoteMsg time.Duration
	// RecvMsg is charged to the receiving worker per delivered message
	// (in-memory handling).
	RecvMsg time.Duration
	// RecvRemoteMsg is charged additionally per cross-worker message
	// received (network + deserialization). This term is what makes
	// hub-heavy graphs skew hash placement in Table IV: workers hosting
	// high in-degree vertices are receive-bound, while Spinner placement
	// keeps hub traffic local and total degree balanced.
	RecvRemoteMsg time.Duration
	// Barrier is the fixed synchronization overhead per superstep.
	Barrier time.Duration
	// VertexTransfer is the fixed cost of re-homing one vertex to another
	// partition (state handoff + routing update), charged by MigrationTime
	// on top of the per-edge transfer volume.
	VertexTransfer time.Duration
}

// Default returns a cost model with commodity-cluster ratios.
func Default() CostModel {
	return CostModel{
		ComputePerEdge: 15 * time.Nanosecond,
		LocalMsg:       40 * time.Nanosecond,
		RemoteMsg:      1000 * time.Nanosecond,
		RecvMsg:        40 * time.Nanosecond,
		RecvRemoteMsg:  800 * time.Nanosecond,
		Barrier:        2 * time.Millisecond,
		VertexTransfer: 3 * time.Microsecond,
	}
}

// Timing summarizes one superstep across workers, the quantities of
// Table IV.
type Timing struct {
	// PerWorker is each worker's busy time.
	PerWorker []time.Duration
	// Mean, Max, Min are over workers.
	Mean, Max, Min time.Duration
}

// IdleFraction is the average fraction of the superstep that workers spend
// waiting at the barrier: 1 − Mean/Max.
func (t Timing) IdleFraction() float64 {
	if t.Max == 0 {
		return 0
	}
	return 1 - float64(t.Mean)/float64(t.Max)
}

// String formats the timing like Table IV's rows.
func (t Timing) String() string {
	return fmt.Sprintf("mean=%v max=%v min=%v idle=%.0f%%", t.Mean, t.Max, t.Min, 100*t.IdleFraction())
}

// Superstep prices one superstep's statistics.
func (m CostModel) Superstep(st pregel.SuperstepStats) Timing {
	w := len(st.SentLocal)
	per := make([]time.Duration, w)
	var sum, maxT time.Duration
	minT := time.Duration(1<<63 - 1)
	for i := 0; i < w; i++ {
		t := time.Duration(st.ComputeEdges[i])*m.ComputePerEdge +
			time.Duration(st.SentLocal[i])*m.LocalMsg +
			time.Duration(st.SentRemote[i])*m.RemoteMsg +
			time.Duration(st.Received[i])*m.RecvMsg +
			time.Duration(st.ReceivedRemote[i])*m.RecvRemoteMsg
		per[i] = t
		sum += t
		if t > maxT {
			maxT = t
		}
		if t < minT {
			minT = t
		}
	}
	if w == 0 {
		minT = 0
	}
	return Timing{PerWorker: per, Mean: sum / time.Duration(max(w, 1)), Max: maxT, Min: minT}
}

// Total prices a whole run: Σ (Barrier + max_w t_w).
func (m CostModel) Total(stats []pregel.SuperstepStats) time.Duration {
	var total time.Duration
	for _, st := range stats {
		total += m.Barrier + m.Superstep(st).Max
	}
	return total
}

// Summary aggregates per-superstep timings over a run, reproducing
// Table IV's Mean ± std / Max ± std / Min ± std rows.
type Summary struct {
	Mean, Max, Min          time.Duration
	MeanStd, MaxStd, MinStd time.Duration
	AvgIdleFraction         float64
}

// Summarize aggregates the given supersteps (skipping any with no work).
func (m CostModel) Summarize(stats []pregel.SuperstepStats) Summary {
	var means, maxs, mins []float64
	idle := 0.0
	for _, st := range stats {
		t := m.Superstep(st)
		if t.Max == 0 {
			continue
		}
		means = append(means, float64(t.Mean))
		maxs = append(maxs, float64(t.Max))
		mins = append(mins, float64(t.Min))
		idle += t.IdleFraction()
	}
	if len(means) == 0 {
		return Summary{}
	}
	mMean, mStd := meanStd(means)
	xMean, xStd := meanStd(maxs)
	nMean, nStd := meanStd(mins)
	return Summary{
		Mean: time.Duration(mMean), MeanStd: time.Duration(mStd),
		Max: time.Duration(xMean), MaxStd: time.Duration(xStd),
		Min: time.Duration(nMean), MinStd: time.Duration(nStd),
		AvgIdleFraction: idle / float64(len(means)),
	}
}

// String formats the summary like a Table IV row.
func (s Summary) String() string {
	return fmt.Sprintf("%.2fs±%.2fs  %.2fs±%.2fs  %.2fs±%.2fs (idle %.0f%%)",
		s.Mean.Seconds(), s.MeanStd.Seconds(), s.Max.Seconds(), s.MaxStd.Seconds(),
		s.Min.Seconds(), s.MinStd.Seconds(), 100*s.AvgIdleFraction)
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std /= float64(len(xs))
	return mean, math.Sqrt(std)
}
