package cluster

import (
	"testing"
	"time"

	"repro/internal/graph"
)

func TestMigrationVolume(t *testing.T) {
	w := graph.NewWeighted(5)
	w.AddEdge(0, 1, 2)
	w.AddEdge(1, 2, 1)
	w.AddEdge(3, 4, 1)
	before := []int32{0, 0, 1, 1, 1}
	after := []int32{0, 1, 1, 1, 0} // vertices 1 and 4 moved

	verts, weight := MigrationVolume(w, before, after)
	if verts != 2 {
		t.Fatalf("vertices = %d, want 2", verts)
	}
	// deg_w(1) = 2+1 = 3, deg_w(4) = 1.
	if weight != 4 {
		t.Fatalf("weight = %d, want 4", weight)
	}

	// Identical labelings move nothing.
	if v, wt := MigrationVolume(w, before, before); v != 0 || wt != 0 {
		t.Fatalf("self-migration = (%d,%d), want (0,0)", v, wt)
	}

	// Appended vertices (present only in `after`) are placements, not
	// migrations.
	grown := append(append([]int32(nil), after...), 2, 2)
	if v, _ := MigrationVolume(w, before, grown); v != 2 {
		t.Fatalf("with appended vertices: %d migrations, want 2", v)
	}
}

func TestMigrationTimePricing(t *testing.T) {
	m := Default()
	if m.VertexTransfer <= 0 {
		t.Fatal("default cost model must price vertex transfer")
	}
	small := m.MigrationTime(10, 100)
	large := m.MigrationTime(1000, 10000)
	if small <= 0 || large <= small {
		t.Fatalf("pricing not monotonic: small=%v large=%v", small, large)
	}
	// The unit prices compose linearly.
	want := 10*m.VertexTransfer + 100*(m.RemoteMsg+m.RecvMsg+m.RecvRemoteMsg)
	if small != want {
		t.Fatalf("MigrationTime(10,100) = %v, want %v", small, want)
	}
	if m.MigrationTime(0, 0) != time.Duration(0) {
		t.Fatal("empty migration must be free")
	}
}
